"""Tests for the applications: edge queries, triangle counting, matching."""

import itertools

import pytest

from repro.apps import (
    EdgeQueryEngine,
    SubgraphMatcher,
    clique_pattern,
    edge_iterator_count,
    path_pattern,
    triangle_pattern,
    trigon_count,
)
from repro.core import HybridVend
from repro.graph import Graph, erdos_renyi_graph, powerlaw_graph
from repro.storage import GraphStore

from .conftest import paper_example_graph


def brute_triangles(graph: Graph) -> int:
    count = 0
    for u, v in graph.edges():
        count += len(graph.neighbors(u) & graph.neighbors(v))
    return count // 3


@pytest.fixture
def stored_graph(tmp_path):
    graph = powerlaw_graph(150, avg_degree=8, seed=20)
    store = GraphStore(tmp_path / "adj.log")
    store.bulk_load(graph)
    vend = HybridVend(k=4)
    vend.build(graph)
    yield graph, store, vend
    store.close()


class TestEdgeQueryEngine:
    def test_answers_match_ground_truth(self, stored_graph):
        graph, store, vend = stored_graph
        engine = EdgeQueryEngine(store, vend)
        vertices = sorted(graph.vertices())[:30]
        for u, v in itertools.combinations(vertices, 2):
            assert engine.has_edge(u, v) == graph.has_edge(u, v)

    def test_filter_cuts_disk_reads(self, stored_graph):
        graph, store, vend = stored_graph
        pairs = list(itertools.combinations(sorted(graph.vertices())[:40], 2))
        store.stats.reset()
        baseline = EdgeQueryEngine(store, None)
        baseline.run(pairs)
        unfiltered_reads = store.stats.disk_reads
        store.stats.reset()
        filtered = EdgeQueryEngine(store, vend)
        filtered.run(pairs)
        filtered_reads = store.stats.disk_reads
        assert filtered_reads < unfiltered_reads
        assert filtered.stats.filter_rate > 0.5

    def test_stats_accumulate(self, stored_graph):
        _, store, vend = stored_graph
        engine = EdgeQueryEngine(store, vend)
        engine.run([(1, 2), (3, 4)])
        engine.run([(5, 6)])
        assert engine.stats.total == 3
        assert engine.stats.filtered + engine.stats.executed == 3


class TestEdgeIterator:
    def test_counts_fig2_triangles(self, tmp_path):
        graph = paper_example_graph()
        store = GraphStore(tmp_path / "g.log")
        store.bulk_load(graph)
        expected = brute_triangles(graph)
        assert edge_iterator_count(store).triangles == expected

    def test_vend_preserves_count_and_skips_fetches(self, stored_graph):
        graph, store, vend = stored_graph
        expected = brute_triangles(graph)
        plain = edge_iterator_count(store)
        accelerated = edge_iterator_count(store, vend)
        assert plain.triangles == expected
        assert accelerated.triangles == expected
        assert accelerated.skipped_fetches > 0
        assert accelerated.disk_reads < plain.disk_reads

    def test_empty_graph(self, tmp_path):
        store = GraphStore(tmp_path / "empty.log")
        store.bulk_load(Graph())
        assert edge_iterator_count(store).triangles == 0


class TestTrigon:
    @pytest.mark.parametrize("budget", [50, 500, 10**6])
    def test_counts_match_brute_force(self, tmp_path, budget):
        graph = erdos_renyi_graph(80, 400, seed=21)
        store = GraphStore(tmp_path / "g.log")
        store.bulk_load(graph)
        stats = trigon_count(store, tmp_path / "work", budget)
        assert stats.triangles == brute_triangles(graph)

    def test_vend_shrinks_companion_files(self, stored_graph, tmp_path):
        graph, store, vend = stored_graph
        expected = brute_triangles(graph)
        plain = trigon_count(store, tmp_path / "w1", 300)
        accelerated = trigon_count(store, tmp_path / "w2", 300, vend=vend)
        assert plain.triangles == expected
        assert accelerated.triangles == expected
        assert accelerated.filtered_triples > 0
        assert accelerated.companion_bytes < plain.companion_bytes

    def test_invalid_budget(self, tmp_path):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2)]))
        with pytest.raises(ValueError):
            trigon_count(store, tmp_path / "w", 0)


class TestMatching:
    def test_patterns(self):
        assert triangle_pattern().num_edges == 3
        assert path_pattern(3).num_edges == 3
        assert clique_pattern(4).num_edges == 6
        with pytest.raises(ValueError):
            path_pattern(0)
        with pytest.raises(ValueError):
            clique_pattern(1)

    def test_triangle_embeddings_match(self, stored_graph):
        graph, store, vend = stored_graph
        matcher = SubgraphMatcher(store, vend)
        stats = matcher.count(triangle_pattern())
        # Each triangle has 3! = 6 injective embeddings.
        assert stats.embeddings == 6 * brute_triangles(graph)

    def test_vend_filters_verification_queries(self, stored_graph):
        graph, store, vend = stored_graph
        plain = SubgraphMatcher(store, None).count(clique_pattern(3))
        fast = SubgraphMatcher(store, vend).count(clique_pattern(3))
        assert plain.embeddings == fast.embeddings
        assert fast.filtered_queries > 0
        assert fast.disk_reads < plain.disk_reads

    def test_path_counting(self, tmp_path):
        graph = Graph([(1, 2), (2, 3), (3, 4)])
        store = GraphStore(tmp_path / "p.log")
        store.bulk_load(graph)
        stats = SubgraphMatcher(store).count(path_pattern(3))
        # The only 3-edge path maps in 2 directions.
        assert stats.embeddings == 2

    def test_disconnected_pattern_rejected(self, tmp_path):
        store = GraphStore(tmp_path / "d.log")
        store.bulk_load(Graph([(1, 2)]))
        pattern = Graph([(1, 2), (3, 4)])
        with pytest.raises(ValueError):
            SubgraphMatcher(store).count(pattern)
