"""Tests for the directed-graph VEND extension."""

import itertools
import random

from repro.core import DirectedVend, HybridVend
from repro.graph import DiGraph, powerlaw_graph


def directed_graph(seed=40):
    base = powerlaw_graph(120, avg_degree=8, seed=seed)
    rng = random.Random(seed)
    digraph = DiGraph()
    for v in base.vertices():
        digraph.add_vertex(v)
    for u, v in base.edges():
        if rng.random() < 0.5:
            digraph.add_edge(u, v)
        else:
            digraph.add_edge(v, u)
        if rng.random() < 0.2:
            digraph.add_edge(v, u)
    return digraph


class TestDirectedVend:
    def test_no_false_positives_directed(self):
        digraph = directed_graph()
        vend = DirectedVend(HybridVend(k=4))
        vend.build(digraph)
        vertices = sorted(digraph.vertices())
        for u, v in itertools.permutations(vertices[:60], 2):
            if digraph.has_edge(u, v):
                assert not vend.is_nonedge(u, v), (u, v)

    def test_detects_directed_nonedges(self):
        digraph = directed_graph()
        vend = DirectedVend(HybridVend(k=4))
        vend.build(digraph)
        vertices = sorted(digraph.vertices())
        detected = sum(
            1 for u, v in itertools.permutations(vertices[:60], 2)
            if not digraph.has_edge(u, v) and vend.is_nonedge(u, v)
        )
        assert detected > 0

    def test_symmetric_determination(self):
        """The undirected base cannot separate u->v from v->u."""
        digraph = directed_graph()
        vend = DirectedVend(HybridVend(k=4))
        vend.build(digraph)
        vertices = sorted(digraph.vertices())
        for u, v in itertools.combinations(vertices[:40], 2):
            assert vend.is_nonedge(u, v) == vend.is_nonedge(v, u)

    def test_name_and_memory(self):
        vend = DirectedVend(HybridVend(k=2))
        assert vend.name == "directed-hybrid"
        vend.build(directed_graph())
        assert vend.memory_bytes() > 0
