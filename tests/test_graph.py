"""Unit tests for the graph substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    Graph,
    banded_regular_graph,
    erdos_renyi_graph,
    powerlaw_graph,
    random_edge_sample,
)


class TestGraphBasics:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_vertex_id == 0
        assert g.average_degree() == 0.0

    def test_add_edge_creates_vertices(self):
        g = Graph()
        assert g.add_edge(1, 2)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.num_edges == 1

    def test_duplicate_edge_ignored(self):
        g = Graph([(1, 2)])
        assert not g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(3, 3)

    def test_negative_vertex_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_vertex(-1)

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert not g.remove_edge(1, 2)
        assert g.num_edges == 1

    def test_remove_vertex_drops_incident_edges(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        assert g.remove_vertex(1)
        assert not g.has_vertex(1)
        assert g.num_edges == 1
        assert g.has_edge(2, 3)
        assert not g.remove_vertex(1)

    def test_sorted_neighbors_view(self):
        g = Graph([(5, 9), (5, 1), (5, 4)])
        assert g.sorted_neighbors(5) == [1, 4, 9]
        g.add_edge(5, 7)
        assert g.sorted_neighbors(5) == [1, 4, 7, 9]
        g.remove_edge(5, 4)
        assert g.sorted_neighbors(5) == [1, 7, 9]

    def test_edges_iterates_once_each(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        edges = sorted(g.edges())
        assert edges == [(1, 2), (1, 3), (2, 3)]

    def test_degree_and_average(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(2) == 1
        assert g.average_degree() == pytest.approx(6 / 4)

    def test_degree_histogram(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree_histogram() == {3: 1, 1: 3}

    def test_copy_is_independent(self):
        g = Graph([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert h.has_edge(2, 3)

    def test_contains_and_len(self):
        g = Graph([(1, 2)])
        assert 1 in g and 3 not in g
        assert len(g) == 2


class TestDiGraph:
    def test_directed_edges(self):
        g = DiGraph([(1, 2)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)
        assert g.out_neighbors(1) == {2}
        assert g.in_neighbors(2) == {1}

    def test_as_undirected(self):
        g = DiGraph([(1, 2), (2, 1), (2, 3)])
        u = g.as_undirected()
        assert u.num_edges == 2
        assert u.has_edge(1, 2) and u.has_edge(2, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiGraph([(1, 1)])


class TestGenerators:
    def test_powerlaw_shape(self):
        g = powerlaw_graph(2000, avg_degree=10, seed=1)
        assert g.num_vertices == 2000
        # Power law: max degree far exceeds the average.
        max_degree = max(g.degree(v) for v in g.vertices())
        assert max_degree > 5 * g.average_degree()

    def test_powerlaw_deterministic(self):
        a = powerlaw_graph(500, avg_degree=8, seed=42)
        b = powerlaw_graph(500, avg_degree=8, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_powerlaw_rejects_tiny(self):
        with pytest.raises(ValueError):
            powerlaw_graph(2)

    def test_banded_regular_non_powerlaw(self):
        g = banded_regular_graph(1000, degree=16, seed=2)
        degrees = [g.degree(v) for v in g.vertices()]
        avg = sum(degrees) / len(degrees)
        # Near-regular: most vertices close to the target degree.
        close = sum(1 for d in degrees if abs(d - avg) <= 8)
        assert close / len(degrees) > 0.9
        assert avg > 10

    def test_banded_locality(self):
        g = banded_regular_graph(1000, degree=10, bandwidth=50, seed=2)
        assert all(abs(u - v) <= 50 for u, v in g.edges())

    def test_erdos_renyi_exact_edges(self):
        g = erdos_renyi_graph(100, 300, seed=5)
        assert g.num_edges == 300
        assert g.num_vertices == 100

    def test_erdos_renyi_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(4, 10)

    def test_random_edge_sample(self):
        g = erdos_renyi_graph(50, 100, seed=1)
        sample = random_edge_sample(g, 10, seed=2)
        assert len(sample) == 10
        assert all(g.has_edge(u, v) for u, v in sample)
        everything = random_edge_sample(g, 10**6)
        assert len(everything) == 100


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 30), st.integers(1, 30)).filter(lambda e: e[0] != e[1]),
    max_size=60,
))
def test_graph_edge_count_invariant(edges):
    """|E| always equals the number of distinct unordered pairs added."""
    g = Graph(edges)
    distinct = {frozenset(e) for e in edges}
    assert g.num_edges == len(distinct)
    assert g.num_edges == sum(g.degree(v) for v in g.vertices()) / 2


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(1, 20), st.integers(1, 20)).filter(lambda e: e[0] != e[1]),
    min_size=1, max_size=40,
))
def test_graph_remove_restores_state(edges):
    """Adding then removing an edge restores adjacency exactly."""
    g = Graph(edges)
    before = {v: sorted(g.neighbors(v)) for v in g.vertices()}
    extra = (25, 26)
    g.add_edge(*extra)
    g.remove_edge(*extra)
    after = {v: sorted(g.neighbors(v)) for v in g.vertices() if v not in extra}
    assert before == after


class TestRMAT:
    def test_vertex_count_and_determinism(self):
        from repro.graph import rmat_graph

        a = rmat_graph(8, 2000, seed=7)
        b = rmat_graph(8, 2000, seed=7)
        assert a.num_vertices == 256
        assert sorted(a.edges()) == sorted(b.edges())

    def test_skew_produces_hubs(self):
        from repro.graph import rmat_graph

        g = rmat_graph(10, 8000, seed=8)
        max_degree = max(g.degree(v) for v in g.vertices())
        assert max_degree > 5 * g.average_degree()

    def test_uniform_quadrants_are_not_skewed(self):
        from repro.graph import rmat_graph

        g = rmat_graph(10, 8000, a=0.25, b=0.25, c=0.25, seed=9)
        max_degree = max(g.degree(v) for v in g.vertices())
        assert max_degree < 5 * g.average_degree()

    def test_validation(self):
        import pytest

        from repro.graph import rmat_graph

        with pytest.raises(ValueError):
            rmat_graph(1, 10)
        with pytest.raises(ValueError):
            rmat_graph(4, 10, a=0.9, b=0.3, c=0.3)

    def test_simple_graph_projection(self):
        from repro.graph import rmat_graph

        g = rmat_graph(6, 500, seed=10)
        for u, v in g.edges():
            assert u != v
