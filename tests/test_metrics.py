"""Tests for degree-distribution metrics."""

import math

import pytest

from repro.datasets import DATASETS, dataset_names, load
from repro.graph import (
    Graph,
    banded_regular_graph,
    degree_percentile,
    is_power_law,
    powerlaw_exponent,
    powerlaw_graph,
)


class TestExponent:
    def test_powerlaw_graph_exponent_in_range(self):
        g = powerlaw_graph(3000, avg_degree=10, seed=90)
        alpha = powerlaw_exponent(g)
        assert 1.2 < alpha < 4.0

    def test_regular_graph_tail_exponent_large(self):
        g = banded_regular_graph(1000, degree=20, seed=91)
        # Above the median, a near-regular degree distribution has
        # almost no spread, so the tail exponent blows up.
        from repro.graph import degree_percentile

        cutoff = degree_percentile(g, 0.5)
        assert powerlaw_exponent(g, d_min=cutoff) > 4.0

    def test_empty_tail(self):
        g = Graph([(1, 2)])
        assert powerlaw_exponent(g, d_min=5) == math.inf

    def test_invalid_dmin(self):
        with pytest.raises(ValueError):
            powerlaw_exponent(Graph(), d_min=0)


class TestPercentile:
    def test_median_of_star(self):
        g = Graph([(1, v) for v in range(2, 12)])
        assert degree_percentile(g, 0.5) == 1
        assert degree_percentile(g, 1.0) == 10

    def test_bounds(self):
        with pytest.raises(ValueError):
            degree_percentile(Graph(), 1.5)
        assert degree_percentile(Graph(), 0.5) == 0


class TestIsPowerLaw:
    def test_detects_all_dataset_analogues(self):
        """The data-driven label matches Table I for every analogue."""
        for name in dataset_names():
            g = load(name, scale=0.3)
            assert is_power_law(g) == DATASETS[name].power_law, name

    def test_tiny_graph_not_power_law(self):
        assert not is_power_law(Graph([(1, 2)]))
