"""Tests for online resharding: two-generation routing, the mutation
guard, reshard config inheritance, and concurrent delete_vertex."""

import threading

import numpy as np
import pytest

from repro.core import HybPlusVend
from repro.graph import Graph, powerlaw_graph
from repro.storage import (
    FaultConfig,
    FaultInjectingKVStore,
    GraphStore,
    ShardedGraphStore,
)
from repro.storage.kvstore import DiskKVStore


def _ring_graph(n):
    return Graph([(i, (i + 1) % n) for i in range(n)])


def _assert_matches(store, graph):
    assert sorted(store.vertices()) == sorted(graph.vertices())
    for v in graph.vertices():
        assert store.get_neighbors(v) == graph.sorted_neighbors(v)


class TestOnlineReshard:
    @pytest.mark.parametrize("s_from,s_to", [(4, 2), (2, 4), (3, 3)])
    def test_flip_preserves_every_adjacency(self, s_from, s_to):
        g = powerlaw_graph(120, avg_degree=6, seed=1)
        store = ShardedGraphStore(num_shards=s_from)
        store.bulk_load(g)
        store.begin_reshard(s_to)
        assert store.reshard_active
        while store.migrate_step(16):
            pass
        store.finish_reshard()
        assert not store.reshard_active
        assert store.num_shards == s_to
        _assert_matches(store, g)

    def test_reads_are_correct_mid_migration(self):
        g = powerlaw_graph(100, avg_degree=5, seed=2)
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(g)
        store.begin_reshard(2)
        verts = np.asarray(sorted(g.vertices()), dtype=np.int64)
        rng = np.random.default_rng(0)
        while True:
            moved = store.migrate_step(8)
            us = verts[rng.integers(0, len(verts), size=64)]
            vs = verts[rng.integers(0, len(verts), size=64)]
            got = store.has_edge_many(us, vs)
            expected = [g.has_edge(int(u), int(v)) for u, v in zip(us, vs)]
            assert got.tolist() == expected
            if moved == 0:
                break
        store.finish_reshard()
        _assert_matches(store, g)

    def test_writes_during_migration_land_in_both_generations(self):
        g = _ring_graph(40)
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(g)
        store.begin_reshard(4)
        store.migrate_step(20)               # partially migrated
        store.insert_edge(0, 20)             # endpoints in either gen
        store.delete_edge(1, 2)
        store.put_neighbors(999, [])         # brand-new vertex
        g.add_vertex(999)
        g.add_edge(0, 20)
        g.remove_edge(1, 2)
        assert store.has_edge(0, 20) and store.has_edge(20, 0)
        assert not store.has_edge(1, 2)
        store.finish_reshard()
        _assert_matches(store, g)

    def test_generation_counter_bumps_at_begin_and_flip(self):
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(_ring_graph(10))
        assert store.generation == 0
        store.begin_reshard(4)
        assert store.generation == 1
        assert len(store.segments) == 6      # combined old + new space
        store.finish_reshard()
        assert store.generation == 2
        assert len(store.segments) == 4

    def test_second_reshard_after_flip(self):
        g = _ring_graph(30)
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(g)
        store.begin_reshard(4)
        store.finish_reshard()
        store.begin_reshard(2)
        store.finish_reshard()
        assert store.num_shards == 2
        _assert_matches(store, g)

    def test_begin_twice_raises(self):
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(_ring_graph(8))
        store.begin_reshard(4)
        with pytest.raises(RuntimeError):
            store.begin_reshard(3)
        store.finish_reshard()
        with pytest.raises(RuntimeError):
            store.finish_reshard()

    def test_relocating_reshard_is_reopenable(self, tmp_path):
        g = _ring_graph(20)
        store = ShardedGraphStore(tmp_path / "old.db", num_shards=2)
        store.bulk_load(g)
        store.begin_reshard(4, path=tmp_path / "new.db")
        store.finish_reshard()
        _assert_matches(store, g)
        store.close()
        with ShardedGraphStore(tmp_path / "new.db", num_shards=4) as again:
            _assert_matches(again, g)

    def test_in_place_disk_reshard(self, tmp_path):
        g = _ring_graph(20)
        store = ShardedGraphStore(tmp_path / "g.db", num_shards=2)
        store.bulk_load(g)
        store.begin_reshard(4)
        store.finish_reshard()
        _assert_matches(store, g)
        # The new generation lives under a .g1 prefix, away from the
        # retired generation's files.
        assert (tmp_path / "g.db.g1.shard0").exists()
        store.close()

    def test_finish_reshard_preflushes_segments_before_flip(
            self, tmp_path, monkeypatch):
        """The heavy fsync happens per-segment *before* the flip span.

        Each new-generation segment must see exactly two durable
        flushes: the chunked pre-flush (its own short exclusive
        window) and the near-empty straggler sync inside the flip.
        """
        g = powerlaw_graph(80, avg_degree=5, seed=4)
        store = ShardedGraphStore(tmp_path / "old.db", num_shards=2)
        store.bulk_load(g)
        store.begin_reshard(4, path=tmp_path / "new.db")
        while store.migrate_step(16):
            pass
        new_segments = list(store._migration.segments)
        sync_flushes: list[int] = []
        orig_flush = GraphStore.flush

        def counting_flush(self, sync=False):
            if sync:
                sync_flushes.append(id(self))
            return orig_flush(self, sync)

        monkeypatch.setattr(GraphStore, "flush", counting_flush)
        store.finish_reshard()
        for seg in new_segments:
            assert sync_flushes.count(id(seg)) == 2, (
                "expected pre-flush + straggler sync for each segment")
        _assert_matches(store, g)
        store.close()
        # Durability: the flipped generation reopens complete.
        with ShardedGraphStore(tmp_path / "new.db", num_shards=4) as again:
            _assert_matches(again, g)

    def test_progress_gauges_move(self):
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(_ring_graph(32))
        stats = store.reshard_stats
        store.begin_reshard(4)
        assert stats.active == 1
        assert stats.vertices_pending == 32
        store.migrate_step(16)
        assert 0.0 < stats.progress < 1.0
        store.finish_reshard()
        assert stats.active == 0
        assert stats.progress == 1.0
        assert stats.migrations == 1
        assert stats.vertices_migrated >= 32


class TestReshardConfigInheritance:
    """Satellite regression: reshard() used to silently drop the source
    store's compress/mmap/cache/kv_factory configuration."""

    def test_offline_reshard_inherits_compress_and_mmap(self, tmp_path):
        g = _ring_graph(24)
        source = ShardedGraphStore(tmp_path / "src.db", num_shards=2,
                                   cache_bytes=1 << 14, compress=True,
                                   use_mmap=True)
        source.bulk_load(g)
        target = source.reshard(4, path=tmp_path / "dst.db")
        _assert_matches(target, g)
        for seg in target.segments:
            assert seg._kv._compress is True
            assert seg._kv._use_mmap is True
            assert seg._kv._cache is not None
        # The target's records really are compressed blobs.
        target.put_neighbors(500, list(range(0, 64, 2)))
        assert target.stats.compressed_puts > 0
        source.close()
        target.close()

    def test_offline_reshard_inherits_kv_factory(self, tmp_path):
        wrapped = []

        def factory(seg_path, shard):
            injector = FaultInjectingKVStore(DiskKVStore(seg_path),
                                             FaultConfig(seed=shard))
            wrapped.append(injector)
            return injector

        source = ShardedGraphStore(tmp_path / "src.db", num_shards=2,
                                   kv_factory=factory)
        source.bulk_load(_ring_graph(12))
        built_for_source = len(wrapped)
        target = source.reshard(3, path=tmp_path / "dst.db")
        assert len(wrapped) == built_for_source + 3
        for seg in target.segments:
            assert isinstance(seg._kv, FaultInjectingKVStore)
        source.close()
        target.close()

    def test_explicit_override_still_wins(self, tmp_path):
        source = ShardedGraphStore(tmp_path / "src.db", num_shards=2,
                                   compress=True)
        source.bulk_load(_ring_graph(8))
        target = source.reshard(2, path=tmp_path / "dst.db",
                                compress=False)
        for seg in target.segments:
            assert seg._kv._compress is False
        source.close()
        target.close()

    def test_online_reshard_inherits_config(self, tmp_path):
        g = _ring_graph(16)
        store = ShardedGraphStore(tmp_path / "g.db", num_shards=2,
                                  compress=True, use_mmap=True)
        store.bulk_load(g)
        store.begin_reshard(4)
        store.finish_reshard()
        for seg in store.segments:
            assert seg._kv._compress is True
            assert seg._kv._use_mmap is True
        _assert_matches(store, g)
        store.close()


class TestConcurrentDeleteVertex:
    """Satellite regression: delete_vertex used to scrub half-edges
    segment by segment with no guard, so a concurrent batch could see
    (u, v) gone while (v, u) still existed."""

    def test_batches_never_observe_half_deleted_vertices(self):
        n = 60
        g = _ring_graph(n)
        extra = [(i, (i + 7) % n) for i in range(0, n, 3)]
        for u, v in extra:
            if u != v:
                g.add_edge(u, v)
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(g)

        victims = list(range(0, n, 4))
        edges = sorted(g.edges())
        us = np.asarray([u for u, _ in edges] + [v for _, v in edges],
                        dtype=np.int64)
        vs = np.asarray([v for _, v in edges] + [u for u, _ in edges],
                        dtype=np.int64)
        half = len(edges)

        asymmetries = []
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    got = store.has_edge_many(us, vs)
                except KeyError:
                    # A fully-deleted vertex is a legitimate miss; a
                    # half-deleted one would show up as an asymmetry.
                    continue
                except Exception as exc:  # noqa: BLE001 - any crash fails
                    errors.append(repr(exc))
                    return
                forward, backward = got[:half], got[half:]
                for i in range(half):
                    if forward[i] != backward[i]:
                        asymmetries.append(edges[i])

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for v in victims:
                store.delete_vertex(v)
        finally:
            stop.set()
            for t in threads:
                t.join()

        assert not errors
        assert not asymmetries
        for v in victims:
            assert not store.has_vertex(v)
        for u in store.vertices():
            assert not set(store.get_neighbors(u)) & set(victims)

    def test_parallel_engine_batches_stay_symmetric(self):
        """The engine's read guard must span a whole batch: fan-out
        plus merge happen against one consistent store state."""
        from repro.apps.edge_query import ParallelEdgeQueryEngine

        n = 48
        g = _ring_graph(n)
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(g)
        engine = ParallelEdgeQueryEngine(store, None, workers=4)

        edges = sorted(g.edges())
        us = np.asarray([u for u, _ in edges] + [v for _, v in edges],
                        dtype=np.int64)
        vs = np.asarray([v for _, v in edges] + [u for u, _ in edges],
                        dtype=np.int64)
        half = len(edges)

        asymmetries = []
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    got = engine.has_edge_batch(us, vs)
                except KeyError:
                    continue  # fully-deleted vertex: a legitimate miss
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
                    return
                bad = got[:half] != got[half:]
                if bad.any():
                    asymmetries.extend(
                        edges[i] for i in np.flatnonzero(bad))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for v in range(0, n, 5):
                store.delete_vertex(v)
        finally:
            stop.set()
            thread.join()
        engine.close()
        assert not errors
        assert not asymmetries


class TestEngineGenerationAwareness:
    def test_engine_tracks_reshard_generations(self):
        from repro.apps.edge_query import ParallelEdgeQueryEngine

        g = powerlaw_graph(80, avg_degree=5, seed=4)
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(g)
        engine = ParallelEdgeQueryEngine(store, None, workers=4)
        verts = np.asarray(sorted(g.vertices()), dtype=np.int64)
        us, vs = verts, np.roll(verts, -1)
        expected = [g.has_edge(int(u), int(v)) for u, v in zip(us, vs)]

        assert engine.has_edge_batch(us, vs).tolist() == expected
        store.begin_reshard(2)
        store.migrate_step(20)
        # Mid-migration: the routable space is old + new generations.
        assert engine.has_edge_batch(us, vs).tolist() == expected
        assert len(engine.shard_stats) == 6
        store.finish_reshard()
        assert engine.has_edge_batch(us, vs).tolist() == expected
        assert len(engine.shard_stats) == 2
        assert engine.has_edge(int(us[0]), int(vs[0])) == expected[0]
        engine.close()

    def test_queries_concurrent_with_online_reshard(self):
        from repro.apps.edge_query import ParallelEdgeQueryEngine

        g = powerlaw_graph(120, avg_degree=6, seed=5)
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(g)
        engine = ParallelEdgeQueryEngine(store, None, workers=4)
        verts = np.asarray(sorted(g.vertices()), dtype=np.int64)
        us, vs = verts, np.roll(verts, -1)
        expected = [g.has_edge(int(u), int(v)) for u, v in zip(us, vs)]

        wrong = []
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    got = engine.has_edge_batch(us, vs)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
                    return
                if got.tolist() != expected:
                    wrong.append(got)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            store.begin_reshard(2)
            while store.migrate_step(10):
                pass
            store.finish_reshard()
        finally:
            stop.set()
            for t in threads:
                t.join()
        engine.close()
        assert not errors
        assert not wrong
        assert store.num_shards == 2


class TestDatabaseReshard:
    def test_db_reshard_roundtrip(self):
        from repro.apps import VendGraphDB

        g = powerlaw_graph(100, avg_degree=5, seed=6)
        db = VendGraphDB(shards=4, k=6)
        db.load_graph(g)
        verts = np.asarray(sorted(g.vertices()), dtype=np.int64)
        us, vs = verts, np.roll(verts, -1)
        expected = [g.has_edge(int(u), int(v)) for u, v in zip(us, vs)]
        db.reshard(2)
        assert db.num_shards == 2
        assert db.has_edge_batch(us, vs).tolist() == expected
        db.reshard(4)
        assert db.num_shards == 4
        assert db.has_edge_batch(us, vs).tolist() == expected
        # Mutations keep working across the new layout.
        assert db.remove_edge(int(us[0]), int(vs[0])) == expected[0]
        db.close()

    def test_db_reshard_requires_sharded_store(self):
        from repro.apps import VendGraphDB

        db = VendGraphDB()
        db.load_graph(_ring_graph(8))
        with pytest.raises(ValueError, match="sharded"):
            db.reshard(2)
        db.close()

    def test_db_reshard_rejects_process_executor(self, tmp_path):
        from repro.apps import VendGraphDB

        db = VendGraphDB(tmp_path / "g.db", shards=2, executor="process")
        db.load_graph(_ring_graph(16))
        with pytest.raises(ValueError, match="process"):
            db.reshard(4)
        db.close()

    def test_db_reshard_with_replicas(self):
        from repro.apps import VendGraphDB

        g = powerlaw_graph(60, avg_degree=4, seed=7)
        db = VendGraphDB(shards=2, replicas=1, k=6)
        db.load_graph(g)
        db.reshard(4)
        assert db.num_shards == 4
        assert db.replicas == 1
        for seg in db.store.segments:
            assert seg.num_replicas == 1
        for v in g.vertices():
            assert db.neighbors(v) == g.sorted_neighbors(v)
        db.close()


class TestChaosAudit:
    def test_chaos_audit_passes_both_directions(self):
        from repro.devtools import audit_chaos

        g = powerlaw_graph(150, avg_degree=6, seed=8)
        for shards, to in ((4, 2), (2, 4)):
            report = audit_chaos(g, HybPlusVend(k=6), shards=shards,
                                 replicas=1, workers=shards, seed=3,
                                 pairs=300, updates=12, reshard_to=to)
            assert report.ok, report.summary()
            assert report.failovers > 0
            assert report.reshard_to == to
