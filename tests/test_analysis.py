"""Tests for index introspection and score diagnostics."""

import pytest

from repro.core import HybPlusVend, HybridVend
from repro.core.analysis import describe_code, index_statistics, score_breakdown
from repro.graph import powerlaw_graph
from repro.workloads import random_pairs

from .conftest import paper_example_graph


@pytest.fixture(scope="module")
def built():
    graph = powerlaw_graph(200, avg_degree=10, seed=70)
    solution = HybridVend(k=2, id_bits=10)
    solution.build(graph)
    return graph, solution


class TestDescribeCode:
    def test_decodable_description(self):
        graph = paper_example_graph()
        solution = HybridVend(k=2)
        solution.build(graph)
        desc = describe_code(solution, 5)
        assert desc.decodable and desc.exact
        assert desc.recorded_ids == (3,)
        assert desc.nt_size == graph.max_vertex_id - 1
        assert desc.block_kind is None

    def test_core_description(self, built):
        graph, solution = built
        core = next(v for v in graph.vertices()
                    if not solution.is_decodable(v))
        desc = describe_code(solution, core)
        assert not desc.decodable
        assert desc.block_kind in ("leftmost", "middle", "rightmost", "empty")
        assert desc.slot_bits >= 1
        assert 0.0 <= desc.slot_occupancy <= 1.0
        if desc.block_size:
            lo, hi = desc.block_range
            assert lo <= hi

    def test_hybplus_description(self):
        graph = powerlaw_graph(150, avg_degree=10, seed=71)
        solution = HybPlusVend(k=2, id_bits=10)
        solution.build(graph)
        core = next(v for v in graph.vertices()
                    if not solution.is_decodable(v))
        desc = describe_code(solution, core)
        assert not desc.decodable
        assert desc.slot_bits >= 1


class TestIndexStatistics:
    def test_counts_add_up(self, built):
        graph, solution = built
        stats = index_statistics(solution)
        assert stats.num_codes == graph.num_vertices
        core_total = sum(stats.block_kind_counts.values())
        assert stats.decodable_codes + core_total == stats.num_codes
        assert 0.0 <= stats.decodable_fraction <= 1.0
        assert 0.0 <= stats.mean_slot_occupancy <= 1.0
        assert 0.0 < stats.mean_nt_fraction <= 1.0
        assert stats.memory_bytes == solution.memory_bytes()

    def test_static_build_is_fully_exact(self, built):
        _, solution = built
        stats = index_statistics(solution)
        assert stats.exact_codes == stats.num_codes

    def test_sampled_subset(self, built):
        graph, solution = built
        sample = sorted(graph.vertices())[:25]
        stats = index_statistics(solution, sample=sample)
        assert stats.num_codes == 25


class TestScoreBreakdown:
    def test_classes_cover_sample(self, built):
        graph, solution = built
        pairs = random_pairs(graph, 3000, seed=72)
        breakdown = score_breakdown(solution, graph, pairs)
        assert sum(breakdown.class_counts.values()) <= len(pairs)
        for rate in (breakdown.decodable_decodable, breakdown.mixed,
                     breakdown.core_core):
            assert 0.0 <= rate <= 1.0

    def test_peeled_classes_are_perfect_statically(self, built):
        """dec-dec and mixed pairs are decided exactly after a build."""
        graph, solution = built
        pairs = random_pairs(graph, 5000, seed=73)
        breakdown = score_breakdown(solution, graph, pairs)
        assert breakdown.decodable_decodable == pytest.approx(1.0)
        assert breakdown.mixed == pytest.approx(1.0)
