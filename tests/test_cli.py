"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import powerlaw_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = powerlaw_graph(200, avg_degree=8, seed=50)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


def run(args):
    return main([str(a) for a in args])


class TestGenerate:
    def test_generate_powerlaw(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert run(["generate", "--powerlaw", 300, 8, "--out", out]) == 0
        assert out.exists()
        assert "|V|=" in capsys.readouterr().out

    def test_generate_dataset(self, tmp_path, capsys):
        out = tmp_path / "d.txt"
        assert run(["generate", "--dataset", "cage", "--scale", 0.05,
                    "--out", out]) == 0
        assert "avg degree" in capsys.readouterr().out

    def test_generate_requires_source(self, tmp_path):
        with pytest.raises(SystemExit):
            run(["generate", "--out", tmp_path / "x.txt"])


class TestBuildInfoQueryScore:
    def test_full_pipeline(self, tmp_path, graph_file, capsys):
        index = tmp_path / "g.vend"
        assert run(["build", "--graph", graph_file, "--out", index,
                    "--method", "hybrid", "--k", 4]) == 0
        assert index.exists()

        assert run(["info", index]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out and "k*" in out

        assert run(["query", index, 1, 199]) == 0
        out = capsys.readouterr().out
        assert "NO EDGE" in out or "UNDETERMINED" in out

        assert run(["score", "--index", index, "--graph", graph_file,
                    "--pairs", 5000]) == 0
        out = capsys.readouterr().out
        assert "false pos : 0" in out

    def test_hybplus_build(self, tmp_path, graph_file):
        index = tmp_path / "p.vend"
        assert run(["build", "--graph", graph_file, "--out", index,
                    "--method", "hyb+", "--k", 4]) == 0

    def test_common_workload_score(self, tmp_path, graph_file, capsys):
        index = tmp_path / "g.vend"
        run(["build", "--graph", graph_file, "--out", index, "--k", 4])
        capsys.readouterr()
        assert run(["score", "--index", index, "--graph", graph_file,
                    "--pairs", 2000, "--workload", "common"]) == 0
        assert "score" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            run(["frobnicate"])


class TestAnalyze:
    def test_analyze_output(self, tmp_path, graph_file, capsys):
        index = tmp_path / "a.vend"
        run(["build", "--graph", graph_file, "--out", index, "--k", 4])
        capsys.readouterr()
        assert run(["analyze", "--index", index, "--graph", graph_file,
                    "--pairs", 2000]) == 0
        out = capsys.readouterr().out
        assert "decodable" in out
        assert "core-core" in out


_SMALL_WORKLOAD = ["--vertices", 80, "--pairs", 200, "--updates", 10]


class TestStatsTrace:
    def test_stats_text_lists_every_series(self, capsys):
        assert run(["stats", *_SMALL_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "repro_query_total_total{" in out
        assert "repro_storage_disk_reads_total{" in out
        assert "repro_db_maintenance_reads_total{" in out

    def test_stats_json_is_valid(self, capsys):
        import json

        assert run(["stats", "--json", *_SMALL_WORKLOAD]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_query_total_total" in names
        assert "repro_query_latency_seconds" in names
        assert all("series" in m for m in doc["metrics"])

    def test_stats_prometheus_has_type_lines(self, capsys):
        assert run(["stats", "--prometheus", *_SMALL_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_storage_disk_reads_total counter" in out
        assert "# TYPE repro_query_latency_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_stats_formats_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            run(["stats", "--json", "--prometheus"])

    def test_trace_prints_query_trees(self, capsys):
        assert run(["trace", "--limit", 3, *_SMALL_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "ndf_filter" in out

    def test_trace_json(self, capsys):
        import json

        from repro.obs import default_tracer

        assert run(["trace", "--json", "--limit", 2, *_SMALL_WORKLOAD]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc) <= 2
        assert all("name" in span for span in doc)
        assert not default_tracer().enabled  # switched back off
