"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import powerlaw_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = powerlaw_graph(200, avg_degree=8, seed=50)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


def run(args):
    return main([str(a) for a in args])


class TestGenerate:
    def test_generate_powerlaw(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert run(["generate", "--powerlaw", 300, 8, "--out", out]) == 0
        assert out.exists()
        assert "|V|=" in capsys.readouterr().out

    def test_generate_dataset(self, tmp_path, capsys):
        out = tmp_path / "d.txt"
        assert run(["generate", "--dataset", "cage", "--scale", 0.05,
                    "--out", out]) == 0
        assert "avg degree" in capsys.readouterr().out

    def test_generate_requires_source(self, tmp_path):
        with pytest.raises(SystemExit):
            run(["generate", "--out", tmp_path / "x.txt"])


class TestBuildInfoQueryScore:
    def test_full_pipeline(self, tmp_path, graph_file, capsys):
        index = tmp_path / "g.vend"
        assert run(["build", "--graph", graph_file, "--out", index,
                    "--method", "hybrid", "--k", 4]) == 0
        assert index.exists()

        assert run(["info", index]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out and "k*" in out

        assert run(["query", index, 1, 199]) == 0
        out = capsys.readouterr().out
        assert "NO EDGE" in out or "UNDETERMINED" in out

        assert run(["score", "--index", index, "--graph", graph_file,
                    "--pairs", 5000]) == 0
        out = capsys.readouterr().out
        assert "false pos : 0" in out

    def test_hybplus_build(self, tmp_path, graph_file):
        index = tmp_path / "p.vend"
        assert run(["build", "--graph", graph_file, "--out", index,
                    "--method", "hyb+", "--k", 4]) == 0

    def test_common_workload_score(self, tmp_path, graph_file, capsys):
        index = tmp_path / "g.vend"
        run(["build", "--graph", graph_file, "--out", index, "--k", 4])
        capsys.readouterr()
        assert run(["score", "--index", index, "--graph", graph_file,
                    "--pairs", 2000, "--workload", "common"]) == 0
        assert "score" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            run(["frobnicate"])


class TestAnalyze:
    def test_analyze_output(self, tmp_path, graph_file, capsys):
        index = tmp_path / "a.vend"
        run(["build", "--graph", graph_file, "--out", index, "--k", 4])
        capsys.readouterr()
        assert run(["analyze", "--index", index, "--graph", graph_file,
                    "--pairs", 2000]) == 0
        out = capsys.readouterr().out
        assert "decodable" in out
        assert "core-core" in out
