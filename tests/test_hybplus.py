"""Tests for the hyb+ (SS-tree + Stream VByte) VEND solution."""

import random

import pytest

from repro.core.hybplus import HybPlusVend
from repro.core.hybrid import HybridVend
from repro.graph import erdos_renyi_graph, powerlaw_graph

from .conftest import all_pairs, assert_no_false_positives, paper_example_graph


def build(graph, k=2, **kwargs):
    solution = HybPlusVend(k=k, **kwargs)
    solution.build(graph)
    return solution


class TestEncoding:
    def test_invalid_scalar(self):
        with pytest.raises(ValueError):
            HybPlusVend(k=2, scalar=1)

    def test_every_vertex_encoded(self):
        g = powerlaw_graph(150, avg_degree=8, seed=1)
        s = build(g, k=2)
        assert s.num_codes == g.num_vertices

    def test_core_codes_parse(self):
        g = powerlaw_graph(150, avg_degree=12, seed=2)
        s = build(g, k=2)
        cores = [v for v in g.vertices() if not s.is_decodable(v)]
        assert cores
        for v in cores[:20]:
            (kind, size, head, tail, controls, actives,
             _do, slot_offset, m) = s._parse_core(s.code_of(v))
            assert m >= 1
            assert slot_offset + m == s.total_bits
            if size >= 2:
                assert head < tail
            assert sum(actives) == max(0, size - 2)

    def test_decodable_same_as_hybrid(self):
        g = paper_example_graph()
        s = build(g, k=2)
        assert s.is_decodable(5)
        assert s.decoded_ids(5) == [3]


class TestNDF:
    @pytest.mark.parametrize("k", [2, 4])
    def test_no_false_positives(self, k):
        g = powerlaw_graph(200, avg_degree=8, seed=3)
        s = build(g, k=k)
        detected = assert_no_false_positives(s, g)
        assert detected > 0

    @pytest.mark.parametrize("scalar", [2, 4, 8])
    def test_sound_across_scalars(self, scalar):
        g = powerlaw_graph(120, avg_degree=10, seed=4)
        s = build(g, k=2, scalar=scalar)
        assert_no_false_positives(s, g)

    def test_score_at_least_hybrid(self):
        """hyb+ compression frees slot bits: score >= hybrid's (Fig. 7/8)."""
        g = powerlaw_graph(250, avg_degree=10, seed=5)
        hyb = HybridVend(k=2)
        hyb.build(g)
        plus = build(g, k=2)
        pairs = [(u, v) for u, v in all_pairs(g) if not g.has_edge(u, v)]
        hyb_score = sum(1 for u, v in pairs if hyb.is_nonedge(u, v))
        plus_score = sum(1 for u, v in pairs if plus.is_nonedge(u, v))
        assert plus_score >= hyb_score * 0.98

    def test_nt_size_matches_brute_force(self):
        g = powerlaw_graph(100, avg_degree=10, seed=6)
        s = build(g, k=2)
        max_id = g.max_vertex_id
        for v in list(g.vertices())[:30]:
            code = s.code_of(v)
            brute = sum(1 for w in range(1, max_id + 1) if s.ne_test(w, code))
            assert s.nt_size(code) == brute


class TestMaintenance:
    def test_churn_soundness(self):
        g = erdos_renyi_graph(50, 250, seed=7)
        s = build(g, k=2)
        rng = random.Random(7)
        vertices = sorted(g.vertices())
        for _ in range(150):
            u, v = rng.sample(vertices, 2)
            if rng.random() < 0.5:
                if g.add_edge(u, v):
                    s.insert_edge(u, v, g.sorted_neighbors)
            elif g.has_edge(u, v):
                g.remove_edge(u, v)
                s.delete_edge(u, v, g.sorted_neighbors)
        assert_no_false_positives(s, g)

    def test_delete_restores_detection(self):
        g = paper_example_graph()
        s = build(g, k=2)
        g.remove_edge(5, 3)
        s.delete_edge(5, 3, g.sorted_neighbors)
        assert s.is_nonedge(5, 3)
