"""Tests for the BitVector substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import BitVector


class TestBitVectorBasics:
    def test_initial_zero(self):
        bv = BitVector(64)
        assert bv.value == 0
        assert bv.popcount() == 0
        assert bv.count_zeros() == 64

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            BitVector(4, 16)

    def test_set_get_clear_bit(self):
        bv = BitVector(16)
        bv.set_bit(3)
        assert bv.get_bit(3) == 1
        assert bv.get_bit(2) == 0
        bv.set_bit(3, 0)
        assert bv.get_bit(3) == 0

    def test_bit_out_of_range(self):
        bv = BitVector(8)
        with pytest.raises(IndexError):
            bv.get_bit(8)
        with pytest.raises(IndexError):
            bv.set_bit(-1)

    def test_field_roundtrip(self):
        bv = BitVector(32)
        bv.write_field(5, 10, 0b1010101010)
        assert bv.read_field(5, 10) == 0b1010101010
        assert bv.read_field(0, 5) == 0
        assert bv.read_field(15, 17) == 0

    def test_field_overwrite_clears_old(self):
        bv = BitVector(16)
        bv.write_field(4, 8, 0xFF)
        bv.write_field(4, 8, 0x0F)
        assert bv.read_field(4, 8) == 0x0F

    def test_field_value_too_big(self):
        bv = BitVector(16)
        with pytest.raises(ValueError):
            bv.write_field(0, 4, 16)

    def test_field_out_of_bounds(self):
        bv = BitVector(16)
        with pytest.raises(IndexError):
            bv.write_field(10, 8, 1)

    def test_popcount_window(self):
        bv = BitVector(16, 0b1111_0000_1111_0000)
        assert bv.popcount() == 8
        assert bv.popcount(0, 8) == 4
        assert bv.popcount(4, 8) == 4
        assert bv.count_zeros(0, 4) == 4

    def test_bytes_roundtrip(self):
        bv = BitVector(20, 0xABCDE)
        restored = BitVector.from_bytes(bv.to_bytes(), 20)
        assert restored == bv
        assert hash(restored) == hash(bv)

    def test_copy_independent(self):
        bv = BitVector(8, 3)
        cp = bv.copy()
        cp.set_bit(7)
        assert bv.value == 3
        assert cp.value != 3

    def test_clear(self):
        bv = BitVector(8, 0xFF)
        bv.clear()
        assert bv.value == 0

    def test_equality_needs_same_width(self):
        assert BitVector(8, 1) != BitVector(9, 1)
        assert BitVector(8, 1) != 1


@settings(max_examples=100, deadline=None)
@given(
    st.integers(1, 200),
    st.data(),
)
def test_fields_are_disjoint(width, data):
    """Writes to non-overlapping fields never disturb each other."""
    bv = BitVector(width)
    split = data.draw(st.integers(0, width))
    left_width, right_width = split, width - split
    left = data.draw(st.integers(0, (1 << left_width) - 1)) if left_width else 0
    right = data.draw(st.integers(0, (1 << right_width) - 1)) if right_width else 0
    if left_width:
        bv.write_field(0, left_width, left)
    if right_width:
        bv.write_field(split, right_width, right)
    if left_width:
        assert bv.read_field(0, left_width) == left
    if right_width:
        assert bv.read_field(split, right_width) == right
    assert bv.popcount() == left.bit_count() + right.bit_count()
