"""Tests for the Bloom-filter comparators (SBF, BBF, CBF, LBF)."""

import pytest

from repro.filters import (
    BlockedBloomFilter,
    CountingBloomFilter,
    LocalBloomFilter,
    StandardBloomFilter,
    edge_hash,
    mix64,
    optimal_hash_count,
    vertex_hash,
)
from repro.graph import erdos_renyi_graph, powerlaw_graph

from .conftest import all_pairs, assert_no_false_positives


class TestHashing:
    def test_mix64_deterministic_and_spread(self):
        values = {mix64(i) for i in range(1000)}
        assert len(values) == 1000
        assert all(0 <= v < 2**64 for v in values)

    def test_edge_hash_symmetric(self):
        assert edge_hash(3, 9, 0) == edge_hash(9, 3, 0)
        assert edge_hash(3, 9, 0) != edge_hash(3, 9, 1)

    def test_vertex_hash_salts_differ(self):
        assert vertex_hash(5, 0) != vertex_hash(5, 1)

    def test_optimal_hash_count(self):
        assert optimal_hash_count(1000, 100) == 7
        assert optimal_hash_count(1000, 0) == 1
        assert optimal_hash_count(10**9, 1) == 16  # clamped


def _build(cls, graph, k=4, **kwargs):
    filt = cls(k=k, **kwargs)
    filt.build(graph)
    return filt


class TestStandardBloom:
    def test_soundness_and_detection(self):
        g = powerlaw_graph(200, avg_degree=8, seed=1)
        f = _build(StandardBloomFilter, g)
        assert assert_no_false_positives(f, g) > 0

    def test_self_pair(self):
        g = erdos_renyi_graph(30, 60, seed=2)
        f = _build(StandardBloomFilter, g)
        assert not f.is_nonedge(5, 5)

    def test_insert_edge(self):
        g = erdos_renyi_graph(50, 100, seed=3)
        f = _build(StandardBloomFilter, g)
        pair = next(
            (u, v) for u, v in all_pairs(g)
            if not g.has_edge(u, v) and f.is_nonedge(u, v)
        )
        f.insert_edge(*pair)
        assert not f.is_nonedge(*pair)

    def test_delete_rebuilds_globally(self):
        g = erdos_renyi_graph(40, 120, seed=4)
        f = _build(StandardBloomFilter, g)
        u, v = next(iter(g.edges()))
        g.remove_edge(u, v)
        f.delete_edge(u, v, g.edges())
        assert f.rebuilds == 1
        assert_no_false_positives(f, g)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            StandardBloomFilter(k=0)

    def test_memory_budget_matches_vend(self):
        g = erdos_renyi_graph(100, 300, seed=5)
        f = _build(StandardBloomFilter, g, k=4)
        assert f.memory_bytes() == 100 * 4 * 32 // 8


class TestBlockedBloom:
    def test_soundness(self):
        g = powerlaw_graph(200, avg_degree=8, seed=6)
        f = _build(BlockedBloomFilter, g)
        assert assert_no_false_positives(f, g) > 0

    def test_delete_rebuilds_one_block_but_scans_all_edges(self):
        g = erdos_renyi_graph(60, 200, seed=7)
        f = _build(BlockedBloomFilter, g)
        u, v = next(iter(g.edges()))
        g.remove_edge(u, v)
        f.delete_edge(u, v, g.edges())
        assert f.block_rebuilds == 1
        assert f.edges_rehashed == g.num_edges
        assert_no_false_positives(f, g)

    def test_block_assignment_stable(self):
        g = erdos_renyi_graph(50, 150, seed=8)
        f = _build(BlockedBloomFilter, g)
        assert f.block_of(1, 2) == f.block_of(2, 1)
        assert 0 <= f.block_of(1, 2) < f.num_blocks

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BlockedBloomFilter(k=0)
        with pytest.raises(ValueError):
            BlockedBloomFilter(k=2, block_bits=4)


class TestCountingBloom:
    def test_soundness(self):
        g = powerlaw_graph(150, avg_degree=8, seed=9)
        f = _build(CountingBloomFilter, g)
        assert_no_false_positives(f, g)

    def test_delete_is_incremental(self):
        g = erdos_renyi_graph(40, 120, seed=10)
        f = _build(CountingBloomFilter, g)
        u, v = next(iter(g.edges()))
        g.remove_edge(u, v)
        f.delete_edge(u, v)
        assert_no_false_positives(f, g)

    def test_insert_delete_roundtrip_detection(self):
        g = erdos_renyi_graph(40, 80, seed=11)
        f = _build(CountingBloomFilter, g)
        pair = next(
            (u, v) for u, v in all_pairs(g)
            if not g.has_edge(u, v) and f.is_nonedge(u, v)
        )
        f.insert_edge(*pair)
        assert not f.is_nonedge(*pair)
        f.delete_edge(*pair)
        assert f.is_nonedge(*pair)

    def test_higher_fpr_than_sbf(self):
        """Quarter of the slots -> CBF detects fewer NEpairs than SBF."""
        g = powerlaw_graph(300, avg_degree=10, seed=12)
        sbf = _build(StandardBloomFilter, g, k=2)
        cbf = _build(CountingBloomFilter, g, k=2)
        pairs = [(u, v) for u, v in all_pairs(g) if not g.has_edge(u, v)]
        sbf_hits = sum(1 for u, v in pairs if sbf.is_nonedge(u, v))
        cbf_hits = sum(1 for u, v in pairs if cbf.is_nonedge(u, v))
        assert cbf_hits <= sbf_hits


class TestLocalBloom:
    def test_soundness(self):
        g = powerlaw_graph(200, avg_degree=8, seed=13)
        f = _build(LocalBloomFilter, g)
        assert assert_no_false_positives(f, g) > 0

    def test_insert_then_query(self):
        g = erdos_renyi_graph(50, 150, seed=14)
        f = _build(LocalBloomFilter, g)
        pair = next(
            (u, v) for u, v in all_pairs(g)
            if not g.has_edge(u, v) and f.is_nonedge(u, v)
        )
        g.add_edge(*pair)
        f.insert_edge(*pair)
        assert not f.is_nonedge(*pair)
        assert_no_false_positives(f, g)

    def test_delete_local_rebuild(self):
        g = erdos_renyi_graph(40, 200, seed=15)
        f = _build(LocalBloomFilter, g)
        u, v = next(iter(g.edges()))
        g.remove_edge(u, v)
        f.delete_edge(u, v, g.sorted_neighbors)
        assert_no_false_positives(f, g)

    def test_churn_soundness(self):
        import random

        g = erdos_renyi_graph(40, 120, seed=16)
        f = _build(LocalBloomFilter, g)
        rng = random.Random(16)
        vertices = sorted(g.vertices())
        for _ in range(200):
            u, v = rng.sample(vertices, 2)
            if rng.random() < 0.5:
                if g.add_edge(u, v):
                    f.insert_edge(u, v)
            elif g.has_edge(u, v):
                g.remove_edge(u, v)
                f.delete_edge(u, v, g.sorted_neighbors)
        assert_no_false_positives(f, g)

    def test_unknown_vertex(self):
        g = erdos_renyi_graph(20, 40, seed=17)
        f = _build(LocalBloomFilter, g)
        assert not f.is_nonedge(1, 10**6)
