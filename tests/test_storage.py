"""Tests for the disk KV store, cache, and graph store."""

import logging
import os

import numpy as np
import pytest

from repro.graph import DiGraph, Graph, erdos_renyi_graph
from repro.storage import (
    CorruptRecordError,
    DiskKVStore,
    GraphStore,
    InMemoryKVStore,
    LRUCache,
)
from repro.storage.kvstore import _FRAME, _HEADER_V1, _V1_TOMBSTONE, LOG_MAGIC


class _HugeValue(bytes):
    """A bytes stand-in reporting a 4 GiB length without allocating it."""

    def __len__(self):
        return 0xFFFFFFFF


class TestLRUCache:
    def test_basic_put_get(self):
        cache = LRUCache(100)
        cache.put("a", b"xyz")
        assert cache.get("a") == b"xyz"
        assert cache.get("b") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(6)
        cache.put("a", b"xx")
        cache.put("b", b"xx")
        cache.put("c", b"xx")
        cache.get("a")  # refresh a
        cache.put("d", b"xx")  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_oversized_value_not_cached(self):
        cache = LRUCache(4)
        cache.put("a", b"toolong")
        assert cache.get("a") is None
        assert cache.size_bytes == 0

    def test_overwrite_updates_size(self):
        cache = LRUCache(10)
        cache.put("a", b"1234")
        cache.put("a", b"12")
        assert cache.size_bytes == 2

    def test_evict_and_clear(self):
        cache = LRUCache(10)
        cache.put("a", b"12")
        cache.evict("a")
        assert cache.get("a") is None
        cache.put("b", b"12")
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0

    def test_hit_rate(self):
        cache = LRUCache(10)
        assert cache.hit_rate() == 0.0
        cache.put("a", b"1")
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_eviction_counter(self):
        cache = LRUCache(6)
        cache.put("a", b"xx")
        cache.put("b", b"xx")
        cache.put("c", b"xx")
        assert cache.evictions == 0
        cache.put("d", b"xxxx")  # displaces a and b
        assert cache.evictions == 2
        cache.evict("c")  # explicit eviction is NOT counted
        assert cache.evictions == 2
        assert cache.stats()["evictions"] == 2

    def test_ndarray_billed_by_nbytes_not_len(self):
        """Regression: ``len()`` counts *elements*, so a uint32 array
        used to be billed at a quarter of its footprint — 4 such
        entries "fit" in a budget sized for 1, and an array whose
        element count beat the capacity slipped the oversize check."""
        cache = LRUCache(16)
        arr = np.arange(4, dtype=np.uint32)  # len()=4 but 16 bytes
        cache.put("a", arr)
        assert cache.size_bytes == 16
        cache.put("b", np.zeros(1, dtype=np.uint32))  # must evict "a"
        assert cache.get("a") is None
        assert cache.size_bytes == 4
        # 5 elements > capacity 16 bytes? No: 20 bytes — uncacheable.
        cache.put("c", np.zeros(5, dtype=np.uint32))
        assert cache.get("c") is None
        # Overwrite accounting uses the same byte sizing.
        cache.put("b", np.zeros(2, dtype=np.uint32))
        assert cache.size_bytes == 8

    def test_oversized_overwrite_drops_stale_entry(self):
        """A put too large to cache must not leave the old value
        servable under the same key (it would be stale)."""
        cache = LRUCache(4)
        cache.put("a", b"old")
        assert cache.get("a") == b"old"
        cache.put("a", b"toolong")
        assert cache.get("a") is None
        assert cache.size_bytes == 0
        assert cache.evictions == 1

    def test_invalidation_counter(self):
        cache = LRUCache(100)
        cache.put("a", b"x")
        cache.put("b", b"x")
        assert cache.evict("a")
        assert not cache.evict("a")
        assert cache.invalidations == 1
        cache.put("c", b"x")
        cache.clear()
        assert cache.invalidations == 3
        assert cache.stats()["invalidations"] == 3
        assert cache.evictions == 0


class TestDiskKVStore:
    def test_put_get_roundtrip(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"hello")
            store.put(2, b"world")
            assert store.get(1) == b"hello"
            assert store.get(2) == b"world"
            assert store.get(99) is None
            assert len(store) == 2
            assert 1 in store and 99 not in store

    def test_overwrite_returns_latest(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"old")
            store.put(1, b"new")
            assert store.get(1) == b"new"
            assert len(store) == 1

    def test_delete(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"x")
            assert store.delete(1)
            assert store.get(1) is None
            assert not store.delete(1)

    def test_recovery_replays_log(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            store.put(1, b"one")
            store.put(2, b"two")
            store.put(1, b"one-v2")
            store.delete(2)
        with DiskKVStore(path) as store:
            assert store.get(1) == b"one-v2"
            assert store.get(2) is None
            assert len(store) == 1

    def test_read_counters(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"abcd")
            store.get(1)
            store.get(1)
            assert store.stats.disk_reads == 2
            assert store.stats.bytes_read == 8
            assert store.stats.disk_writes == 1

    def test_cache_absorbs_reads(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log", cache_bytes=1024) as store:
            store.put(1, b"abcd")
            store.get(1)  # served from cache (put populated it)
            store.get(1)
            assert store.stats.disk_reads == 0
            assert store.stats.cache_hits == 2

    def test_stats_reset_and_snapshot(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"x")
            snap = store.stats.snapshot()
            assert snap["disk_writes"] == 1
            store.stats.reset()
            assert store.stats.disk_writes == 0


class TestInMemoryKVStore:
    def test_same_interface(self):
        store = InMemoryKVStore()
        store.put(1, b"v")
        assert store.get(1) == b"v"
        assert store.stats.disk_reads == 1
        assert store.delete(1)
        assert not store.delete(1)
        assert store.get(1) is None


class TestGraphStore:
    def test_bulk_load_and_read(self, tmp_path):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        with GraphStore(tmp_path / "g.log") as store:
            store.bulk_load(g)
            assert store.get_neighbors(1) == [2, 3]
            assert store.num_vertices == 3
            assert sorted(store.vertices()) == [1, 2, 3]

    def test_in_memory_backend(self):
        g = Graph([(1, 2)])
        store = GraphStore()
        store.bulk_load(g)
        assert store.get_neighbors(2) == [1]

    def test_has_edge_costs_one_read(self, tmp_path):
        g = Graph([(1, 2), (1, 3)])
        with GraphStore(tmp_path / "g.log") as store:
            store.bulk_load(g)
            store.stats.reset()
            assert store.has_edge(1, 2)
            assert not store.has_edge(1, 99)
            assert store.stats.disk_reads == 2

    def test_missing_vertex_raises(self):
        store = GraphStore()
        with pytest.raises(KeyError):
            store.get_neighbors(42)

    def test_insert_edge_updates_both_sides(self):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2)]))
        assert store.insert_edge(1, 3)
        assert store.get_neighbors(1) == [2, 3]
        assert store.get_neighbors(3) == [1]
        assert not store.insert_edge(1, 3)

    def test_insert_self_loop_rejected(self):
        store = GraphStore()
        with pytest.raises(ValueError):
            store.insert_edge(1, 1)

    def test_delete_edge(self):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2), (1, 3)]))
        assert store.delete_edge(1, 2)
        assert store.get_neighbors(1) == [3]
        assert store.get_neighbors(2) == []
        assert not store.delete_edge(1, 2)

    def test_delete_vertex(self):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2), (1, 3), (2, 3)]))
        assert store.delete_vertex(1)
        assert not store.has_vertex(1)
        assert store.get_neighbors(2) == [3]
        assert not store.delete_vertex(1)

    def test_delete_vertex_writes_each_neighbor_once(self):
        # A degree-d vertex must cost exactly d neighbor rewrites plus
        # one key deletion — not the 2d + 1 writes a delete_edge loop
        # pays (each delete_edge also rewrote v's own shrinking list).
        d = 7
        hub = 0
        store = GraphStore()
        store.bulk_load(Graph([(hub, leaf) for leaf in range(1, d + 1)]))
        writes_before = store.stats.disk_writes
        assert store.delete_vertex(hub)
        assert store.stats.disk_writes - writes_before == d + 1
        for leaf in range(1, d + 1):
            assert store.get_neighbors(leaf) == []

    def test_directed_graph_stored_undirected(self):
        g = DiGraph([(1, 2), (3, 1)])
        store = GraphStore()
        store.bulk_load(g)
        assert store.get_neighbors(1) == [2, 3]

    def test_roundtrip_large(self, tmp_path):
        g = erdos_renyi_graph(200, 800, seed=4)
        with GraphStore(tmp_path / "g.log") as store:
            store.bulk_load(g)
            for v in list(g.vertices())[:50]:
                assert store.get_neighbors(v) == g.sorted_neighbors(v)


class TestCompaction:
    def test_compact_reclaims_space(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            for round_no in range(5):
                for key in range(20):
                    store.put(key, bytes([round_no]) * 50)
            for key in range(10):
                store.delete(key)
            saved = store.compact()
            assert saved > 0
            # Live data survives compaction.
            for key in range(10, 20):
                assert store.get(key) == bytes([4]) * 50
            for key in range(10):
                assert store.get(key) is None

    def test_compacted_store_recovers(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            store.put(1, b"a")
            store.put(1, b"b")
            store.put(2, b"c")
            store.compact()
            store.put(3, b"d")  # writes after compaction append normally
        with DiskKVStore(path) as store:
            assert store.get(1) == b"b"
            assert store.get(2) == b"c"
            assert store.get(3) == b"d"

    def test_compact_empty_store(self, tmp_path):
        with DiskKVStore(tmp_path / "e.log") as store:
            assert store.compact() == 0

    def test_compact_clears_cache(self, tmp_path):
        with DiskKVStore(tmp_path / "c.log", cache_bytes=1024) as store:
            store.put(1, b"x" * 10)
            store.compact()
            store.stats.reset()
            assert store.get(1) == b"x" * 10
            assert store.stats.disk_reads == 1  # cache was invalidated


class TestValueSizeLimit:
    """The v1 tombstone sentinel must never be writable as a length."""

    def test_disk_put_rejects_sentinel_sized_value(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            before = store.path.stat().st_size
            with pytest.raises(ValueError, match="tombstone sentinel"):
                store.put(1, _HugeValue())
            store.flush()
            assert store.path.stat().st_size == before
            assert 1 not in store

    def test_inmemory_put_rejects_sentinel_sized_value(self):
        store = InMemoryKVStore()
        with pytest.raises(ValueError, match="tombstone sentinel"):
            store.put(1, _HugeValue())
        assert 1 not in store


class TestInMemoryCacheParity:
    def test_cache_stats_match_disk_backend(self, tmp_path):
        """The same op sequence must produce the same cache/disk
        counters on both backends (the stats-parity contract)."""
        disk = DiskKVStore(tmp_path / "p.log", cache_bytes=1024)
        mem = InMemoryKVStore(cache_bytes=1024)
        for store in (disk, mem):
            store.put(1, b"abcd")
            store.put(2, b"efgh")
            store.get(1)       # hit: put populated the cache
            store.get(3)       # miss + absent
            store.get_many([1, 2, 2])
        for field in ("cache_hits", "cache_misses", "disk_reads"):
            assert getattr(disk.stats, field) == getattr(mem.stats, field), field
        disk.close()

    def test_inmemory_cache_absorbs_repeat_reads(self):
        store = InMemoryKVStore(cache_bytes=1024)
        store.put(1, b"abcd")
        store.get(1)
        store.get(1)
        assert store.stats.cache_hits == 2
        assert store.stats.disk_reads == 0

    def test_inmemory_delete_invalidates_cache(self):
        store = InMemoryKVStore(cache_bytes=1024)
        store.put(1, b"abcd")
        assert store.delete(1)
        assert store.get(1) is None


class TestCrashRecovery:
    """Torn-write recovery: replay truncates to the last intact record."""

    def _build_log(self, path):
        """Three committed records; returns their cumulative file sizes."""
        sizes = []
        with DiskKVStore(path) as store:
            for key, value in ((1, b"alpha"), (2, b"bravo-bravo"),
                               (3, b"the-final-record")):
                store.put(key, value)
                store.flush()
                sizes.append(path.stat().st_size)
        return sizes

    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        src = tmp_path / "src.log"
        sizes = self._build_log(src)
        data = src.read_bytes()
        assert len(data) == sizes[-1]
        for cut in range(sizes[1], sizes[2]):
            path = tmp_path / f"cut{cut}.log"
            path.write_bytes(data[:cut])
            with DiskKVStore(path) as store:
                assert store.get(1) == b"alpha"
                assert store.get(2) == b"bravo-bravo"
                assert 3 not in store and store.get(3) is None
                # The log was physically truncated to the last boundary,
                # so a new append lands on a clean tail.
                store.put(4, b"post-recovery")
            assert path.stat().st_size > sizes[1]
            with DiskKVStore(path) as store:
                assert store.get(2) == b"bravo-bravo"
                assert store.get(4) == b"post-recovery"

    def test_fully_committed_log_replays_unchanged(self, tmp_path):
        src = tmp_path / "src.log"
        sizes = self._build_log(src)
        with DiskKVStore(src) as store:
            assert store.get(3) == b"the-final-record"
        assert src.stat().st_size == sizes[-1]

    def test_recovery_logs_a_warning(self, tmp_path, caplog):
        src = tmp_path / "src.log"
        self._build_log(src)
        data = src.read_bytes()
        src.write_bytes(data[:-3])
        with caplog.at_level(logging.WARNING, logger="repro.storage.kvstore"):
            with DiskKVStore(src) as store:
                assert 3 not in store
        assert any("truncating torn tail" in rec.message
                   for rec in caplog.records)

    def test_corrupt_tail_checksum_detected(self, tmp_path):
        """A bit flip in the final record (torn page, bit rot) must not
        surface as a short/garbage value after reopen."""
        src = tmp_path / "src.log"
        sizes = self._build_log(src)
        data = bytearray(src.read_bytes())
        data[-4] ^= 0xFF  # corrupt the final record's payload
        src.write_bytes(bytes(data))
        with DiskKVStore(src) as store:
            assert store.get(2) == b"bravo-bravo"
            assert 3 not in store
        assert src.stat().st_size == sizes[1]

    def test_read_time_checksum_verification(self, tmp_path):
        path = tmp_path / "db.log"
        store = DiskKVStore(path)
        store.put(1, b"x" * 32)
        store.flush()
        with open(path, "r+b") as raw:  # corrupt behind the store's back
            raw.seek(len(LOG_MAGIC) + _FRAME.size + 5)
            raw.write(b"\xee")
        with pytest.raises(CorruptRecordError, match="checksum"):
            store.get(1)
        assert store.stats.checksum_failures == 1
        store.close()

    def test_verification_can_be_disabled(self, tmp_path):
        path = tmp_path / "db.log"
        store = DiskKVStore(path, verify_reads=False)
        store.put(1, b"x" * 32)
        store.flush()
        with open(path, "r+b") as raw:
            raw.seek(len(LOG_MAGIC) + _FRAME.size + 5)
            raw.write(b"\xee")
        assert store.get(1) != b"x" * 32  # garbage, but no exception
        store.close()

    def test_tombstone_is_explicit_record_type(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            store.put(7, b"gone-soon")
            store.delete(7)
        data = path.read_bytes()
        rtype, key, size, _crc = _FRAME.unpack_from(data, len(data) - _FRAME.size)
        assert (rtype, key, size) == (0x02, 7, 0)
        with DiskKVStore(path) as store:
            assert 7 not in store


class TestV1Compatibility:
    """Logs written by the pre-checksum format still replay."""

    @staticmethod
    def _v1_record(key, value):
        return _HEADER_V1.pack(key, len(value)) + value

    @staticmethod
    def _v1_tombstone(key):
        return _HEADER_V1.pack(key, _V1_TOMBSTONE)

    def _write_v1_log(self, path):
        path.write_bytes(
            self._v1_record(1, b"aaaa")
            + self._v1_record(2, b"bbbbbb")
            + self._v1_tombstone(1)
            + self._v1_record(3, b"cc")
        )

    def test_v1_log_replays(self, tmp_path):
        path = tmp_path / "legacy.log"
        self._write_v1_log(path)
        with DiskKVStore(path) as store:
            assert store.format_version == 1
            assert store.get(1) is None
            assert store.get(2) == b"bbbbbb"
            assert store.get(3) == b"cc"

    def test_v1_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "legacy.log"
        self._write_v1_log(path)
        full = path.read_bytes()
        path.write_bytes(full[:-1])  # tear the final record
        with DiskKVStore(path) as store:
            assert store.get(2) == b"bbbbbb"
            assert 3 not in store
        assert path.stat().st_size == len(full) - len(self._v1_record(3, b"cc"))

    def test_v1_header_only_tail_truncated(self, tmp_path):
        """A v1 record whose length field says 1 GiB but whose payload
        never hit the disk must not be indexed past EOF."""
        path = tmp_path / "legacy.log"
        self._write_v1_log(path)
        with open(path, "ab") as raw:
            raw.write(_HEADER_V1.pack(9, 1 << 30))
        with DiskKVStore(path) as store:
            assert 9 not in store
            assert store.get(3) == b"cc"

    def test_v1_log_keeps_appending_v1(self, tmp_path):
        path = tmp_path / "legacy.log"
        self._write_v1_log(path)
        with DiskKVStore(path) as store:
            store.put(4, b"dddd")
            store.delete(2)
        with DiskKVStore(path) as store:
            assert store.format_version == 1
            assert store.get(4) == b"dddd"
            assert store.get(2) is None

    def test_compact_upgrades_v1_to_v2(self, tmp_path):
        path = tmp_path / "legacy.log"
        self._write_v1_log(path)
        with DiskKVStore(path) as store:
            assert store.format_version == 1
            store.compact()
            assert store.format_version == 2
            store.put(5, b"new-style")
        assert path.read_bytes()[:len(LOG_MAGIC)] == LOG_MAGIC
        with DiskKVStore(path) as store:
            assert store.format_version == 2
            assert store.get(2) == b"bbbbbb"
            assert store.get(3) == b"cc"
            assert store.get(5) == b"new-style"


class TestAtomicCompaction:
    def _loaded_store(self, path):
        store = DiskKVStore(path)
        for key in range(8):
            store.put(key, bytes([key]) * 32)
            store.put(key, bytes([key]) * 16)  # garbage for GC
        store.flush()
        return store

    def test_interrupted_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "db.log"
        store = self._loaded_store(path)
        before = path.read_bytes()

        def boom(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr("repro.storage.kvstore.os.replace", boom)
        with pytest.raises(OSError, match="before rename"):
            store.compact()
        monkeypatch.undo()
        # Original log untouched, no temp left, store still serves reads.
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]
        assert store.get(3) == bytes([3]) * 16
        store.close()
        with DiskKVStore(path) as reopened:
            assert reopened.get(3) == bytes([3]) * 16

    def test_interrupted_fsync_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "db.log"
        store = self._loaded_store(path)
        before = path.read_bytes()
        real_fsync = os.fsync

        def boom(fd):
            raise OSError("simulated crash before fsync completes")

        monkeypatch.setattr("repro.storage.kvstore.os.fsync", boom)
        with pytest.raises(OSError, match="before fsync"):
            store.compact()
        monkeypatch.setattr("repro.storage.kvstore.os.fsync", real_fsync)
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]
        assert store.get(3) == bytes([3]) * 16
        saved = store.compact()  # and compaction still works afterwards
        assert saved > 0
        assert store.get(3) == bytes([3]) * 16
        store.close()

    def test_successful_compact_is_checksummed(self, tmp_path):
        path = tmp_path / "db.log"
        store = self._loaded_store(path)
        store.compact()
        store.close()
        with DiskKVStore(path) as reopened:
            for key in range(8):
                assert reopened.get(key) == bytes([key]) * 16


class TestLRUCacheThreadSafety:
    def test_two_thread_hammer_keeps_books_consistent(self):
        """Concurrent put/get/evict from two threads must never corrupt
        the size accounting or raise — the cache is the one hot-path
        structure shard-pool threads share."""
        import threading

        cache = LRUCache(1 << 12)
        errors = []

        def hammer(tid):
            try:
                for i in range(4000):
                    key = (tid, i % 37)
                    cache.put(key, bytes(29))
                    cache.get(key)
                    cache.get((1 - tid, i % 37))
                    if i % 11 == 0:
                        cache.evict(key)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.size_bytes == sum(
            len(cache.get(k)) for k in list(cache._data))
        assert cache.size_bytes <= cache.capacity_bytes


class TestBatchedReads:
    """get_many / get_many_packed: counter parity and packed contract."""

    def _loaded(self, path, count=64, cache_bytes=0):
        store = DiskKVStore(path, cache_bytes=cache_bytes)
        for key in range(count):
            store.put(key, bytes([key % 251]) * (17 + key % 13))
        store.flush()
        return store

    def test_get_many_counts_one_read_per_key(self, tmp_path):
        """Span coalescing is physical-layer only: the logical counters
        must book exactly one disk read per distinct uncached key, as
        if each record had its own syscall."""
        store = self._loaded(tmp_path / "db.log", cache_bytes=1 << 16)
        store._cache.clear()  # puts pre-filled the cache
        store.stats.reset()
        keys = [3, 9, 27, 9, 44, 3]  # duplicates dedup
        store.get_many(keys)
        assert store.stats.disk_reads == 4
        assert store.stats.cache_misses == 4
        assert store.stats.cache_hits == 0
        store.get_many(keys)  # second pass: all cache
        assert store.stats.disk_reads == 4
        assert store.stats.cache_hits == 4
        store.close()

    def test_packed_counts_match_get_many(self, tmp_path):
        one = self._loaded(tmp_path / "a.log")
        two = self._loaded(tmp_path / "b.log")
        keys = list(range(0, 64, 3))
        one.stats.reset(); two.stats.reset()
        one.get_many(keys)
        two.get_many_packed(keys)
        assert one.stats.disk_reads == two.stats.disk_reads
        assert one.stats.bytes_read == two.stats.bytes_read
        one.close(); two.close()

    def test_packed_returns_input_order(self, tmp_path):
        store = self._loaded(tmp_path / "db.log")
        keys = [40, 2, 2, 17, 5]
        want = store.get_many(keys)
        data, lengths = store.get_many_packed(keys)
        offset = 0
        for key, length in zip(keys, lengths.tolist()):
            assert bytes(data[offset:offset + length]) == want[key]
            offset += length
        assert offset == len(data)
        store.close()

    def test_packed_vectorized_tier_matches_python_tier(self, tmp_path):
        """The cold pass pre-verifies armed records unbooked and serves
        through the numpy tier; a warm pass must return the same bytes
        and book the same counters."""
        store = self._loaded(tmp_path / "db.log")
        keys = list(range(64))
        cold = store.get_many_packed(keys)
        # Pre-verification disarmed every crc and rebuilt the mirror.
        assert store._vindex is not None
        assert not store._vindex[3].any()  # varmed all clear
        disk_reads_cold = store.stats.disk_reads
        store.stats.reset()
        warm = store.get_many_packed(keys)
        assert bytes(cold[0]) == bytes(warm[0])
        assert cold[1].tolist() == warm[1].tolist()
        # One logical read per key on both passes: verification I/O is
        # maintenance and never double-books.
        assert disk_reads_cold == 64
        assert store.stats.disk_reads == 64
        store.close()

    def test_packed_missing_keys_raise_with_list(self, tmp_path):
        store = self._loaded(tmp_path / "db.log")
        with pytest.raises(KeyError) as err:
            store.get_many_packed([1, 999, 2, 1000])
        assert sorted(err.value.args[0]) == [999, 1000]
        store.get_many_packed(list(range(64)))  # warm the numpy tier
        with pytest.raises(KeyError) as err:
            store.get_many_packed([1, 999])
        assert sorted(err.value.args[0]) == [999]
        store.close()

    def test_packed_detects_corruption_on_first_read(self, tmp_path):
        path = tmp_path / "db.log"
        store = self._loaded(path, count=4)
        with open(path, "r+b") as raw:  # flip a payload byte
            raw.seek(len(LOG_MAGIC) + _FRAME.size + 2)
            raw.write(b"\xee")
        with pytest.raises(CorruptRecordError, match="checksum"):
            store.get_many_packed([0, 1, 2, 3])
        assert store.stats.checksum_failures == 1
        store.close()

    def test_checksums_verify_once_per_open(self, tmp_path):
        """The verify-once trade, pinned: after a clean first read the
        crc is cleared, so later corruption behind a live store goes
        unseen until reopen — which re-arms every checksum."""
        path = tmp_path / "db.log"
        store = self._loaded(path, count=4)
        assert store.get(1) is not None  # verified now
        payload_offset = store._index[1][0]
        with open(path, "r+b") as raw:
            raw.seek(payload_offset + 2)
            raw.write(b"\xee")
        store.get(1)  # crc cleared: no re-verification, no raise
        store.close()
        # Reopen re-checks everything: replay spots the bad record and
        # truncates back to the last intact prefix.
        with DiskKVStore(path) as reopened:
            assert reopened.get(0) is not None
            assert 1 not in reopened

    def test_packed_serves_cache_hits(self, tmp_path):
        store = self._loaded(tmp_path / "db.log", cache_bytes=1 << 16)
        keys = list(range(0, 20))
        store.get_many(keys)  # fill the cache
        store.stats.reset()
        data, lengths = store.get_many_packed(keys)
        assert store.stats.disk_reads == 0
        assert store.stats.cache_hits == len(keys)
        want = store.get_many(keys)
        offset = 0
        for key, length in zip(keys, lengths.tolist()):
            assert bytes(data[offset:offset + length]) == want[key]
            offset += length
        store.close()

    def test_inmemory_packed_matches_disk_contract(self):
        store = InMemoryKVStore()
        for key in range(8):
            store.put(key, bytes([key]) * (4 + key))
        data, lengths = store.get_many_packed([5, 0, 5])
        assert lengths.tolist() == [9, 4, 9]
        assert bytes(data[:9]) == bytes([5]) * 9
        with pytest.raises(KeyError):
            store.get_many_packed([1, 99])
