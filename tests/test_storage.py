"""Tests for the disk KV store, cache, and graph store."""

import pytest

from repro.graph import DiGraph, Graph, erdos_renyi_graph
from repro.storage import DiskKVStore, GraphStore, InMemoryKVStore, LRUCache


class TestLRUCache:
    def test_basic_put_get(self):
        cache = LRUCache(100)
        cache.put("a", b"xyz")
        assert cache.get("a") == b"xyz"
        assert cache.get("b") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(6)
        cache.put("a", b"xx")
        cache.put("b", b"xx")
        cache.put("c", b"xx")
        cache.get("a")  # refresh a
        cache.put("d", b"xx")  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_oversized_value_not_cached(self):
        cache = LRUCache(4)
        cache.put("a", b"toolong")
        assert cache.get("a") is None
        assert cache.size_bytes == 0

    def test_overwrite_updates_size(self):
        cache = LRUCache(10)
        cache.put("a", b"1234")
        cache.put("a", b"12")
        assert cache.size_bytes == 2

    def test_evict_and_clear(self):
        cache = LRUCache(10)
        cache.put("a", b"12")
        cache.evict("a")
        assert cache.get("a") is None
        cache.put("b", b"12")
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0

    def test_hit_rate(self):
        cache = LRUCache(10)
        assert cache.hit_rate() == 0.0
        cache.put("a", b"1")
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_eviction_counter(self):
        cache = LRUCache(6)
        cache.put("a", b"xx")
        cache.put("b", b"xx")
        cache.put("c", b"xx")
        assert cache.evictions == 0
        cache.put("d", b"xxxx")  # displaces a and b
        assert cache.evictions == 2
        cache.evict("c")  # explicit eviction is NOT counted
        assert cache.evictions == 2
        assert cache.stats()["evictions"] == 2

    def test_oversized_overwrite_drops_stale_entry(self):
        """A put too large to cache must not leave the old value
        servable under the same key (it would be stale)."""
        cache = LRUCache(4)
        cache.put("a", b"old")
        assert cache.get("a") == b"old"
        cache.put("a", b"toolong")
        assert cache.get("a") is None
        assert cache.size_bytes == 0
        assert cache.evictions == 1


class TestDiskKVStore:
    def test_put_get_roundtrip(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"hello")
            store.put(2, b"world")
            assert store.get(1) == b"hello"
            assert store.get(2) == b"world"
            assert store.get(99) is None
            assert len(store) == 2
            assert 1 in store and 99 not in store

    def test_overwrite_returns_latest(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"old")
            store.put(1, b"new")
            assert store.get(1) == b"new"
            assert len(store) == 1

    def test_delete(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"x")
            assert store.delete(1)
            assert store.get(1) is None
            assert not store.delete(1)

    def test_recovery_replays_log(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            store.put(1, b"one")
            store.put(2, b"two")
            store.put(1, b"one-v2")
            store.delete(2)
        with DiskKVStore(path) as store:
            assert store.get(1) == b"one-v2"
            assert store.get(2) is None
            assert len(store) == 1

    def test_read_counters(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"abcd")
            store.get(1)
            store.get(1)
            assert store.stats.disk_reads == 2
            assert store.stats.bytes_read == 8
            assert store.stats.disk_writes == 1

    def test_cache_absorbs_reads(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log", cache_bytes=1024) as store:
            store.put(1, b"abcd")
            store.get(1)  # served from cache (put populated it)
            store.get(1)
            assert store.stats.disk_reads == 0
            assert store.stats.cache_hits == 2

    def test_stats_reset_and_snapshot(self, tmp_path):
        with DiskKVStore(tmp_path / "db.log") as store:
            store.put(1, b"x")
            snap = store.stats.snapshot()
            assert snap["disk_writes"] == 1
            store.stats.reset()
            assert store.stats.disk_writes == 0


class TestInMemoryKVStore:
    def test_same_interface(self):
        store = InMemoryKVStore()
        store.put(1, b"v")
        assert store.get(1) == b"v"
        assert store.stats.disk_reads == 1
        assert store.delete(1)
        assert not store.delete(1)
        assert store.get(1) is None


class TestGraphStore:
    def test_bulk_load_and_read(self, tmp_path):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        with GraphStore(tmp_path / "g.log") as store:
            store.bulk_load(g)
            assert store.get_neighbors(1) == [2, 3]
            assert store.num_vertices == 3
            assert sorted(store.vertices()) == [1, 2, 3]

    def test_in_memory_backend(self):
        g = Graph([(1, 2)])
        store = GraphStore()
        store.bulk_load(g)
        assert store.get_neighbors(2) == [1]

    def test_has_edge_costs_one_read(self, tmp_path):
        g = Graph([(1, 2), (1, 3)])
        with GraphStore(tmp_path / "g.log") as store:
            store.bulk_load(g)
            store.stats.reset()
            assert store.has_edge(1, 2)
            assert not store.has_edge(1, 99)
            assert store.stats.disk_reads == 2

    def test_missing_vertex_raises(self):
        store = GraphStore()
        with pytest.raises(KeyError):
            store.get_neighbors(42)

    def test_insert_edge_updates_both_sides(self):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2)]))
        assert store.insert_edge(1, 3)
        assert store.get_neighbors(1) == [2, 3]
        assert store.get_neighbors(3) == [1]
        assert not store.insert_edge(1, 3)

    def test_insert_self_loop_rejected(self):
        store = GraphStore()
        with pytest.raises(ValueError):
            store.insert_edge(1, 1)

    def test_delete_edge(self):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2), (1, 3)]))
        assert store.delete_edge(1, 2)
        assert store.get_neighbors(1) == [3]
        assert store.get_neighbors(2) == []
        assert not store.delete_edge(1, 2)

    def test_delete_vertex(self):
        store = GraphStore()
        store.bulk_load(Graph([(1, 2), (1, 3), (2, 3)]))
        assert store.delete_vertex(1)
        assert not store.has_vertex(1)
        assert store.get_neighbors(2) == [3]
        assert not store.delete_vertex(1)

    def test_directed_graph_stored_undirected(self):
        g = DiGraph([(1, 2), (3, 1)])
        store = GraphStore()
        store.bulk_load(g)
        assert store.get_neighbors(1) == [2, 3]

    def test_roundtrip_large(self, tmp_path):
        g = erdos_renyi_graph(200, 800, seed=4)
        with GraphStore(tmp_path / "g.log") as store:
            store.bulk_load(g)
            for v in list(g.vertices())[:50]:
                assert store.get_neighbors(v) == g.sorted_neighbors(v)


class TestCompaction:
    def test_compact_reclaims_space(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            for round_no in range(5):
                for key in range(20):
                    store.put(key, bytes([round_no]) * 50)
            for key in range(10):
                store.delete(key)
            saved = store.compact()
            assert saved > 0
            # Live data survives compaction.
            for key in range(10, 20):
                assert store.get(key) == bytes([4]) * 50
            for key in range(10):
                assert store.get(key) is None

    def test_compacted_store_recovers(self, tmp_path):
        path = tmp_path / "db.log"
        with DiskKVStore(path) as store:
            store.put(1, b"a")
            store.put(1, b"b")
            store.put(2, b"c")
            store.compact()
            store.put(3, b"d")  # writes after compaction append normally
        with DiskKVStore(path) as store:
            assert store.get(1) == b"b"
            assert store.get(2) == b"c"
            assert store.get(3) == b"d"

    def test_compact_empty_store(self, tmp_path):
        with DiskKVStore(tmp_path / "e.log") as store:
            assert store.compact() == 0

    def test_compact_clears_cache(self, tmp_path):
        with DiskKVStore(tmp_path / "c.log", cache_bytes=1024) as store:
            store.put(1, b"x" * 10)
            store.compact()
            store.stats.reset()
            assert store.get(1) == b"x" * 10
            assert store.stats.disk_reads == 1  # cache was invalidated
