"""Tests for DBF and TBF — including the paper's disqualifying flaws."""

import pytest

from repro.filters import DeletableBloomFilter, TernaryBloomFilter
from repro.graph import erdos_renyi_graph

from .conftest import assert_no_false_positives


def _build(cls, graph, **kwargs):
    filt = cls(k=4, **kwargs)
    filt.build(graph)
    return filt


class TestDeletableBloom:
    def test_static_soundness(self):
        g = erdos_renyi_graph(100, 400, seed=100)
        f = _build(DeletableBloomFilter, g)
        assert assert_no_false_positives(f, g) > 0

    def test_deletion_in_clean_region_restores_detection(self):
        g = erdos_renyi_graph(30, 40, seed=101)
        f = _build(DeletableBloomFilter, g)
        # Find an edge whose deletion actually frees a bit.
        for u, v in list(g.edges()):
            g.remove_edge(u, v)
            f.delete_edge(u, v)
            if f.is_nonedge(u, v):
                break
            g.add_edge(u, v)
            f.insert_edge(u, v)
        else:
            pytest.skip("every edge hashed into collided regions")
        assert_no_false_positives(f, g)

    def test_bits_decay_under_churn(self):
        """The paper's complaint: set bits become permanent over time."""
        import random

        g = erdos_renyi_graph(60, 200, seed=102)
        f = _build(DeletableBloomFilter, g, regions=32)
        rng = random.Random(102)
        vertices = sorted(g.vertices())
        before = f.permanently_set_fraction()
        for _ in range(600):
            u, v = rng.sample(vertices, 2)
            if g.add_edge(u, v):
                f.insert_edge(u, v)
            elif g.has_edge(u, v):
                g.remove_edge(u, v)
                f.delete_edge(u, v)
        after = f.permanently_set_fraction()
        assert after >= before
        assert after > 0.5, "churn should lock in most set bits"
        assert_no_false_positives(f, g)  # decayed, but still sound

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DeletableBloomFilter(k=0)
        with pytest.raises(ValueError):
            DeletableBloomFilter(k=2, regions=0)


class TestTernaryBloom:
    def test_flagged_unsafe_for_vend(self):
        assert TernaryBloomFilter.is_vend_safe is False

    def test_static_soundness(self):
        g = erdos_renyi_graph(100, 400, seed=103)
        f = _build(TernaryBloomFilter, g)
        assert_no_false_positives(f, g)

    def test_false_negative_demonstration(self):
        """Four colliding inserts + three deletes -> a live edge
        reported as an NEpair: the exact violation the paper cites."""
        import numpy as np

        f = TernaryBloomFilter(k=1, num_hashes=1)
        f._counters = np.zeros(1, dtype="uint8")  # everything collides
        f.insert_edge(1, 2)   # 1
        f.insert_edge(3, 4)   # 2
        f.insert_edge(5, 6)   # 3 ("three or more")
        f.insert_edge(7, 8)   # still 3: the fourth element is forgotten
        f.delete_edge(1, 2)   # 2
        f.delete_edge(3, 4)   # 1
        f.delete_edge(5, 6)   # 0 -- but (7, 8) is still inserted!
        assert f.is_nonedge(7, 8), "the documented TBF false negative"

    def test_false_negative_under_small_counters(self):
        """With realistic collisions, deletion can hide a live edge."""
        import random

        g = erdos_renyi_graph(40, 300, seed=104)
        f = TernaryBloomFilter(k=1, num_hashes=2)
        # Deliberately tiny slot: heavy collisions.
        f.num_hashes = 2
        f._counters = __import__("numpy").zeros(64, dtype="uint8")
        for u, v in g.edges():
            f.insert_edge(u, v)
        rng = random.Random(104)
        edges = list(g.edges())
        rng.shuffle(edges)
        for u, v in edges[:150]:
            g.remove_edge(u, v)
            f.delete_edge(u, v)
        false_negatives = sum(
            1 for u, v in g.edges() if f.is_nonedge(u, v)
        )
        # The violation the paper predicts: some existing edges are
        # reported as NEpairs. (If collisions were milder this could be
        # 0; the tiny slot makes it deterministic for this seed.)
        assert false_negatives > 0
