"""Tests for the shard layer: router stability, sharded store, reshard."""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, Graph, powerlaw_graph
from repro.storage import DiskKVStore, GraphStore, ShardedGraphStore, ShardRouter
from repro.storage.faults import FaultConfig, FaultInjectingKVStore

_MASK64 = (1 << 64) - 1


def _reference_mix64(x):
    """Independent splitmix64 finalizer the router must agree with."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    @given(v=st.integers(min_value=0, max_value=2**32 - 1),
           shards=st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_mixer(self, v, shards):
        router = ShardRouter(shards)
        assert router.shard_of(v) == _reference_mix64(v) % shards

    @given(ids=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                        min_size=1, max_size=100),
           shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_vectorized_agrees_with_scalar(self, ids, shards):
        router = ShardRouter(shards)
        vec = router.shard_of_array(np.asarray(ids, dtype=np.int64))
        assert vec.tolist() == [router.shard_of(v) for v in ids]

    @given(ids=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                        min_size=0, max_size=100),
           shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exact_and_input_stable(self, ids, shards):
        router = ShardRouter(shards)
        arr = np.asarray(ids, dtype=np.int64)
        parts = router.partition(arr)
        assert len(parts) == shards
        seen = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        # every input position exactly once
        assert sorted(seen.tolist()) == list(range(len(ids)))
        for shard, idx in enumerate(parts):
            # routed to the owner, in original order
            assert all(router.shard_of(ids[i]) == shard for i in idx)
            assert idx.tolist() == sorted(idx.tolist())

    def test_stable_across_processes_and_hash_seeds(self):
        """The assignment must not depend on PYTHONHASHSEED or the
        process: a store written by one process is read by another."""
        ids = [0, 1, 7, 123456, 2**31, 2**32 - 1]
        expected = [ShardRouter(8).shard_of(v) for v in ids]
        code = (
            "from repro.storage import ShardRouter;"
            f"print([ShardRouter(8).shard_of(v) for v in {ids!r}])"
        )
        for seed in ("0", "1", "31337"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            )
            assert eval(out.stdout.strip()) == expected


def _ring_graph(n):
    return Graph([(i, (i + 1) % n) for i in range(n)])


class TestShardedGraphStore:
    def test_single_shard_behaves_like_plain_store(self):
        g = _ring_graph(12)
        plain = GraphStore()
        plain.bulk_load(g)
        sharded = ShardedGraphStore(num_shards=1)
        sharded.bulk_load(g)
        for v in g.vertices():
            assert sharded.get_neighbors(v) == plain.get_neighbors(v)

    def test_bulk_load_partitions_by_owner(self):
        g = _ring_graph(40)
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(g)
        assert store.num_vertices == 40
        for v in g.vertices():
            owner = store.router.shard_of(v)
            assert store.segments[owner].has_vertex(v)
            for other in range(4):
                if other != owner:
                    assert not store.segments[other].has_vertex(v)

    def test_has_edge_many_matches_scalar(self):
        g = powerlaw_graph(200, avg_degree=6, seed=3)
        store = ShardedGraphStore(num_shards=3)
        store.bulk_load(g)
        rng = np.random.default_rng(0)
        verts = np.asarray(sorted(g.vertices()), dtype=np.int64)
        us = verts[rng.integers(0, len(verts), size=300)]
        vs = verts[rng.integers(0, len(verts), size=300)]
        batch = store.has_edge_many(us, vs)
        assert batch.tolist() == [store.has_edge(int(u), int(v))
                                  for u, v in zip(us, vs)]

    def test_cross_shard_edge_updates(self):
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(Graph([(1, 2)]))
        assert store.insert_edge(1, 3)
        assert not store.insert_edge(1, 3)  # idempotent
        assert store.has_edge(1, 3) and store.has_edge(3, 1)
        assert store.delete_edge(1, 3)
        assert not store.has_edge(1, 3) and not store.has_edge(3, 1)
        with pytest.raises(ValueError):
            store.insert_edge(5, 5)

    def test_delete_vertex_reaches_every_segment(self):
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(Graph([(0, 1), (0, 2), (0, 3), (2, 3)]))
        assert store.delete_vertex(0)
        assert not store.has_vertex(0)
        for v in (1, 2, 3):
            assert 0 not in store.get_neighbors(v)
        assert store.has_edge(2, 3)
        assert not store.delete_vertex(0)

    def test_directed_graphs_store_merged_neighbors(self):
        g = DiGraph([(1, 2), (3, 1)])
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(g)
        assert store.get_neighbors(1) == [2, 3]

    def test_get_neighbors_many_names_all_missing(self):
        store = ShardedGraphStore(num_shards=4)
        store.bulk_load(_ring_graph(8))
        with pytest.raises(KeyError, match=r"\[100, 200\]"):
            store.get_neighbors_many([0, 100, 1, 200])

    def test_stats_aggregate_sums_segments(self, tmp_path):
        g = _ring_graph(64)
        store = ShardedGraphStore(tmp_path / "g.db", num_shards=4)
        store.bulk_load(g)
        store.stats.reset()
        verts = np.asarray(sorted(g.vertices()), dtype=np.int64)
        store.has_edge_many(verts, np.roll(verts, -1))
        total = store.stats.disk_reads
        assert total == sum(seg.stats.disk_reads for seg in store.segments)
        assert total == 64  # one adjacency read per distinct left endpoint
        store.close()

    def test_segment_files_on_disk(self, tmp_path):
        store = ShardedGraphStore(tmp_path / "g.db", num_shards=3)
        store.bulk_load(_ring_graph(9))
        store.close()
        for shard in range(3):
            assert (tmp_path / f"g.db.shard{shard}").exists()
        # reopen sees the same data
        with ShardedGraphStore(tmp_path / "g.db", num_shards=3) as again:
            assert sorted(again.vertices()) == list(range(9))

    def test_kv_factory_faults_stay_shard_local(self, tmp_path):
        """Per-shard fault passthrough: only the wrapped segment
        degrades; healthy shards answer normally."""
        def factory(seg_path, shard):
            inner = DiskKVStore(seg_path)
            if shard == 0:
                return FaultInjectingKVStore(
                    inner, FaultConfig(read_error_rate=0.2, seed=5))
            return inner

        store = ShardedGraphStore(tmp_path / "f.db", num_shards=2,
                                  kv_factory=factory)
        store.bulk_load(_ring_graph(32))
        for v in range(32):
            store.get_neighbors(v)  # retries hide the injected errors
        assert store.segments[0].degraded
        assert not store.segments[1].degraded
        assert store.degraded  # aggregate latches on any segment
        store.close()


class TestReshard:
    @given(edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=60),
                  st.integers(min_value=0, max_value=60)).filter(
                      lambda e: e[0] != e[1]),
        min_size=1, max_size=80),
        s_from=st.integers(min_value=1, max_value=5),
        s_to=st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_reshard_preserves_every_adjacency(self, edges, s_from, s_to):
        g = Graph(edges)
        source = ShardedGraphStore(num_shards=s_from)
        source.bulk_load(g)
        target = source.reshard(s_to)
        assert sorted(target.vertices()) == sorted(source.vertices())
        for v in g.vertices():
            assert target.get_neighbors(v) == g.sorted_neighbors(v)

    def test_reshard_to_disk(self, tmp_path):
        g = _ring_graph(20)
        source = ShardedGraphStore(num_shards=2)
        source.bulk_load(g)
        target = source.reshard(4, path=tmp_path / "r.db")
        for v in g.vertices():
            assert target.get_neighbors(v) == g.sorted_neighbors(v)
        target.close()
