"""Compressed (v3) storage tier: round-trips, mixed logs, mmap views.

Covers the PR 6 storage work end to end at the KV layer:

- StreamVByte v3 records round-trip through every read path (scalar
  ``get``, ``get_many``, the packed tiers) and agree with a raw store;
- v2 and v3 records replay side by side from one log (mixed logs);
- ``compact`` converts between raw and compressed layouts per the
  store's current setting and invalidates any mmap;
- torn v3 records are truncated on replay exactly like torn v2 ones;
- the compression gauge/counters book what actually happened;
- incompressible values fall back to raw records transparently.
"""

import os

import numpy as np
import pytest

from repro.storage.kvstore import DiskKVStore


def _blob(values) -> bytes:
    return np.asarray(sorted(values), dtype="<u4").tobytes()


def _adjacency(n_keys: int, seed: int = 0) -> dict[int, bytes]:
    rng = np.random.default_rng(seed)
    out = {}
    for key in range(n_keys):
        degree = int(rng.integers(1, 40))
        out[key] = _blob(np.unique(rng.integers(0, 50_000, degree)))
    return out


def _packed_all(store, keys):
    data, lengths = store.get_many_packed(np.asarray(keys, dtype=np.int64))
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return {k: data[o:o + n].tobytes()
            for k, o, n in zip(keys, offsets, lengths)}


class TestCompressedRoundTrip:
    def test_all_read_paths_agree_with_raw(self, tmp_path):
        data = _adjacency(120)
        raw = DiskKVStore(tmp_path / "raw.log")
        comp = DiskKVStore(tmp_path / "comp.log", compress=True)
        for k, v in data.items():
            raw.put(k, v)
            comp.put(k, v)
        keys = sorted(data)
        for k in keys[:20]:
            assert comp.get(k) == raw.get(k) == data[k]
        many = comp.get_many(keys)
        assert all(many[k] == data[k] for k in keys)
        assert _packed_all(comp, keys) == data
        assert comp.stats.compressed_puts > 0
        assert os.path.getsize(comp.path) < os.path.getsize(raw.path)
        raw.close()
        comp.close()

    def test_compressed_log_replays(self, tmp_path):
        data = _adjacency(60, seed=1)
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        for k, v in data.items():
            store.put(k, v)
        store.close()
        reopened = DiskKVStore(tmp_path / "kv.log", compress=True)
        assert _packed_all(reopened, sorted(data)) == data
        assert reopened.stats.compression_ratio > 1.0
        reopened.close()

    def test_mixed_v2_v3_log(self, tmp_path):
        """Raw records written first, compressed appended after reopen —
        one log, both formats, every reader serves both."""
        data = _adjacency(80, seed=2)
        keys = sorted(data)
        half = len(keys) // 2
        store = DiskKVStore(tmp_path / "kv.log")
        for k in keys[:half]:
            store.put(k, data[k])
        store.close()
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        for k in keys[half:]:
            store.put(k, data[k])
        assert _packed_all(store, keys) == data
        store.close()
        # A non-compressing reader must still decode the v3 records.
        plain = DiskKVStore(tmp_path / "kv.log")
        assert _packed_all(plain, keys) == data
        plain.close()

    def test_incompressible_values_stay_raw(self, tmp_path):
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        rng = np.random.default_rng(3)
        # Full-range deltas need >4 bytes/lane encoded; raw wins.
        wide = _blob(np.unique(rng.integers(0, 2**32, 30, dtype=np.uint64)
                               .astype(np.uint32)))
        store.put(1, wide)
        short = b"xy"  # not a whole number of lanes
        store.put(2, short)
        assert store.stats.compressed_puts == 0
        assert store.get(1) == wide and store.get(2) == short
        store.close()


class TestCompactionAndGauges:
    def test_compact_converts_raw_to_compressed(self, tmp_path):
        data = _adjacency(60, seed=4)
        store = DiskKVStore(tmp_path / "kv.log")
        for k, v in data.items():
            store.put(k, v)
        store.close()
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        before = os.path.getsize(store.path)
        store.compact()
        assert os.path.getsize(store.path) < before
        assert store.stats.compression_ratio > 1.0
        assert _packed_all(store, sorted(data)) == data
        store.close()

    def test_compact_converts_compressed_to_raw(self, tmp_path):
        data = _adjacency(40, seed=5)
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        for k, v in data.items():
            store.put(k, v)
        store.close()
        store = DiskKVStore(tmp_path / "kv.log", compress=False)
        store.compact()
        assert store.stats.compression_ratio == 1.0
        assert _packed_all(store, sorted(data)) == data
        store.close()

    def test_gauge_tracks_overwrites_and_deletes(self, tmp_path):
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        store.put(1, _blob(range(100, 140)))
        ratio_one = store.stats.compression_ratio
        assert ratio_one > 1.0
        store.put(1, _blob(range(200, 280)))  # overwrite re-books
        store.put(2, _blob(range(50, 60)))
        store.delete(2)
        assert store.stats.compression_ratio > 1.0
        store.delete(1)
        assert store.stats.compression_ratio == 1.0  # empty store
        store.close()

    def test_counters_book_compressed_puts_only(self, tmp_path):
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        store.put(1, _blob(range(10, 40)))
        store.put(2, b"zz")  # raw fallback
        assert store.stats.compressed_puts == 1
        assert store.stats.blob_bytes_raw == 30 * 4
        assert 0 < store.stats.blob_bytes_stored < 30 * 4
        store.close()


class TestTornV3Replay:
    @pytest.mark.parametrize("cut_back", [1, 3, 7])
    def test_torn_compressed_record_truncated(self, tmp_path, cut_back):
        data = _adjacency(20, seed=6)
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        for k, v in data.items():
            store.put(k, v)
        store.put(999, _blob(range(1000, 1060)))
        store.close()
        size = os.path.getsize(tmp_path / "kv.log")
        with open(tmp_path / "kv.log", "r+b") as handle:
            handle.truncate(size - cut_back)
        recovered = DiskKVStore(tmp_path / "kv.log", compress=True)
        assert recovered.get(999) is None  # torn tail dropped
        assert _packed_all(recovered, sorted(data)) == data
        # The replay truncated the log back to the last whole record.
        assert os.path.getsize(recovered.path) < size - cut_back + 1
        recovered.close()


class TestMmapTier:
    def test_mmap_serves_packed_reads(self, tmp_path):
        data = _adjacency(100, seed=7)
        store = DiskKVStore(tmp_path / "kv.log", compress=True,
                            use_mmap=True)
        for k, v in data.items():
            store.put(k, v)
        keys = sorted(data)
        assert _packed_all(store, keys) == data  # arms + validates
        assert _packed_all(store, keys) == data  # mmap fast path
        assert store._mmap is not None
        store.close()
        assert store._mmap is None

    def test_mmap_invalidated_by_compact(self, tmp_path):
        data = _adjacency(50, seed=8)
        store = DiskKVStore(tmp_path / "kv.log", compress=True,
                            use_mmap=True)
        for k, v in data.items():
            store.put(k, v)
        keys = sorted(data)
        _packed_all(store, keys)
        _packed_all(store, keys)
        mapped = store._mmap
        assert mapped is not None
        store.put(7, _blob(range(5)))  # dead bytes for compact to drop
        store.compact()
        assert store._mmap is not mapped  # old inode unmapped
        data[7] = _blob(range(5))
        assert _packed_all(store, keys) == data
        store.close()

    def test_mmap_grows_with_appends(self, tmp_path):
        store = DiskKVStore(tmp_path / "kv.log", use_mmap=True)
        store.put(1, _blob(range(10)))
        _packed_all(store, [1])
        _packed_all(store, [1])
        store.put(2, _blob(range(20, 40)))
        result = _packed_all(store, [1, 2])
        assert result[2] == _blob(range(20, 40))
        store.close()

    def test_reads_identical_with_and_without_mmap(self, tmp_path):
        data = _adjacency(70, seed=9)
        for k_open in (False, True):
            store = DiskKVStore(tmp_path / f"kv{int(k_open)}.log",
                                compress=True, use_mmap=k_open)
            for k, v in data.items():
                store.put(k, v)
            keys = sorted(data)
            _packed_all(store, keys)
            assert _packed_all(store, keys) == data
            store.close()


class TestExportPackedState:
    def test_export_matches_reads(self, tmp_path):
        data = _adjacency(30, seed=10)
        store = DiskKVStore(tmp_path / "kv.log", compress=True)
        for k, v in data.items():
            store.put(k, v)
        state = store.export_packed_state()
        assert state["generation"] == store.mutation_count
        assert sorted(state["keys"].tolist()) == sorted(data)
        store.put(99, _blob(range(3)))
        assert store.mutation_count == state["generation"] + 1
        store.close()
