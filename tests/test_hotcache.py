"""Hot-set decode cache: accounting, admission, verdict parity.

The cache's contract (DESIGN.md §16) is *stats transparency*: turning
it on may change wall time but never verdicts, logical read counters,
or byte totals.  These tests pin the vectorized membership view
against ``membership_sweep`` bit for bit, the byte accounting against
``ndarray.nbytes`` exactly, and the on/off parity across every
registered solution and executor shape.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.apps.database import VendGraphDB
from repro.core import available_solutions, create_solution
from repro.graph import powerlaw_graph
from repro.storage.graphstore import membership_sweep
from repro.storage.hotcache import (
    _LUT_CAP,
    CountMinSketch,
    HotSetCache,
)


def _entry(rng, n_neighbors):
    """A packed sorted-uint32 adjacency blob as the store would cache it."""
    ids = np.sort(rng.choice(2**20, size=n_neighbors, replace=False))
    return ids.astype(np.uint32).view(np.uint8).copy()


class TestCountMinSketch:
    def test_estimates_upper_bound_true_counts(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 200, 5000)
        sketch = CountMinSketch()
        sketch.add(keys)
        uniq, counts = np.unique(keys, return_counts=True)
        assert (sketch.estimate(uniq) >= counts).all()

    def test_decay_halves_counts(self):
        sketch = CountMinSketch(decay_window=100)
        keys = np.full(99, 7, dtype=np.int64)
        sketch.add(keys)
        before = int(sketch.estimate(np.array([7]))[0])
        sketch.add(np.array([7, 7]))  # crosses the window
        after = int(sketch.estimate(np.array([7]))[0])
        assert after <= before // 2 + 1

    def test_hash_seed_independent(self):
        """Sketch buckets must not involve Python ``hash()``."""
        keys = [0, 1, 7, 123456, 2**31, 2**40]
        code = (
            "import numpy as np;"
            "from repro.storage.hotcache import CountMinSketch;"
            "s = CountMinSketch();"
            f"k = np.array({keys!r}, dtype=np.int64);"
            "s.add(np.repeat(k, 3));"
            "print(s.estimate(k).tolist())"
        )
        outs = set()
        for seed in ("0", "1", "31337"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            )
            outs.add(out.stdout.strip())
        assert len(outs) == 1
        assert eval(outs.pop()) == [3] * len(keys)


class TestByteAccounting:
    def test_size_tracks_exact_nbytes(self):
        rng = np.random.default_rng(1)
        cache = HotSetCache(1 << 20)
        blobs = [_entry(rng, n) for n in (3, 17, 120)]
        for i, blob in enumerate(blobs):
            assert cache.admit_one(i, blob, stored_size=len(blob) + 9)
        assert cache.size_bytes == sum(b.nbytes for b in blobs)
        assert len(cache) == 3
        cache.evict(1)
        assert cache.size_bytes == blobs[0].nbytes + blobs[2].nbytes

    def test_oversized_and_empty_rejected(self):
        cache = HotSetCache(16)
        assert not cache.admit_one(1, np.zeros(64, dtype=np.uint8), 64)
        assert not cache.admit_one(2, np.zeros(0, dtype=np.uint8), 0)
        assert cache.size_bytes == 0

    def test_stored_size_is_what_get_reports(self):
        cache = HotSetCache(1 << 16)
        blob = _entry(np.random.default_rng(2), 8)
        cache.admit_one(5, blob, stored_size=777)
        value, stored = cache.get(5)
        assert value == blob.tobytes()
        assert stored == 777


class TestAdmission:
    def test_full_cache_gates_on_eviction_floor(self):
        """A cold key cannot displace a hot set it has never out-hit."""
        rng = np.random.default_rng(3)
        blob = _entry(rng, 16)  # 64 bytes
        cache = HotSetCache(blob.nbytes * 4)
        hot_keys = np.array([1, 2, 3, 4], dtype=np.int64)
        for _ in range(50):
            cache.observe(hot_keys)
        for k in hot_keys.tolist():
            assert cache.admit_one(k, blob.copy(), blob.nbytes)
        gen = cache.generation
        # One-touch stranger: estimate 1 never beats the floor.
        cache.observe(np.array([99], dtype=np.int64))
        n = cache.admit(np.array([99]), blob.copy(),
                        np.array([0]), np.array([blob.nbytes]),
                        np.array([blob.nbytes]))
        assert n == 0
        assert cache.generation == gen
        assert sorted(k for k in hot_keys.tolist()) == sorted(
            [1, 2, 3, 4])

    def test_readmission_of_cached_key_is_a_noop(self):
        cache = HotSetCache(1 << 16)
        blob = _entry(np.random.default_rng(4), 8)
        assert cache.admit_one(1, blob.copy(), blob.nbytes)
        size = cache.size_bytes
        assert not cache.admit_one(1, blob.copy(), blob.nbytes)
        assert cache.size_bytes == size

    def test_generation_bump_is_deferred_until_mass_threshold(self):
        """A trickle of tail admissions must not invalidate the view
        every batch — that is the whole point of the deferred rebuild."""
        rng = np.random.default_rng(5)
        cache = HotSetCache(1 << 22)
        big = _entry(rng, 4096)  # 16 KiB resident entry
        cache.admit_one(0, big, big.nbytes)
        assert cache.membership_view() is not None
        gen = cache.generation
        tiny = _entry(rng, 2)
        cache.admit_one(1, tiny, tiny.nbytes)
        # 8 bytes against 16 KiB: far below size >> 4, no bump...
        assert cache.generation == gen
        # ...so the pending key is served cold (a view miss), not stale.
        res = cache.probe_verdicts(np.array([1], dtype=np.int64),
                                   np.array([0], dtype=np.int64))
        hit, _, _, _ = res
        assert not hit[0]
        # A mass-crossing admission folds everything in at once.
        big2 = _entry(rng, 4096)
        cache.admit_one(2, big2, big2.nbytes)
        assert cache.generation > gen
        keys = cache.membership_view()[0]
        assert keys.tolist() == [0, 1, 2]


class TestInvalidation:
    def test_evict_and_invalidate_all_bump_generation(self):
        cache = HotSetCache(1 << 16)
        blob = _entry(np.random.default_rng(6), 8)
        cache.admit_one(1, blob.copy(), blob.nbytes)
        cache.admit_one(2, blob.copy(), blob.nbytes)
        gen = cache.generation
        assert cache.evict(1)
        assert cache.generation == gen + 1
        assert cache.stats.invalidations == 1
        cache.invalidate_all()
        assert cache.stats.invalidations == 2
        assert len(cache) == 0 and cache.size_bytes == 0
        assert cache.membership_view() is None

    def test_shrink_capacity_sheds_to_budget(self):
        rng = np.random.default_rng(7)
        cache = HotSetCache(1 << 16)
        for k in range(16):
            cache.admit_one(k, _entry(rng, 16), 64)
        cache.set_capacity(256)
        assert cache.size_bytes <= 256
        assert cache.stats.evictions > 0


def _sweep_reference(cache, us, vs):
    """Ground truth for probe_verdicts via the cold-path sweep."""
    keys, _starts, rawszs, _storedszs, buf = cache.snapshot()
    pos = np.minimum(np.searchsorted(keys, us), len(keys) - 1)
    hit = keys[pos] == us
    counts = rawszs // 4
    verdicts = np.zeros(len(us), dtype=bool)
    if hit.any():
        verdicts[hit] = membership_sweep(buf, counts, pos[hit], vs[hit])
    return hit, verdicts


class TestMembershipView:
    @pytest.mark.parametrize("bitmap", [True, False])
    @pytest.mark.parametrize("key_offset", [0, _LUT_CAP + 7])
    def test_probe_verdicts_match_membership_sweep(self, key_offset,
                                                   bitmap, monkeypatch):
        """Bitwise parity with the cold sweep, on every lookup path:
        dense LUT vs searchsorted keys (beyond ``_LUT_CAP``), bitmap
        vs searchsorted membership (bitmap cap forced to 0)."""
        if not bitmap:
            monkeypatch.setattr("repro.storage.hotcache._BITMAP_CAP_BYTES",
                                0)
        rng = np.random.default_rng(8)
        cache = HotSetCache(1 << 22)
        for k in range(40):
            cache.admit_one(key_offset + k, _entry(rng, int(rng.integers(1, 60))),
                            64)
        view = cache.membership_view()
        assert (view[3] is None) == (key_offset > _LUT_CAP)
        assert (view[4] is None) == (not bitmap)
        us = key_offset + rng.integers(-5, 50, 4000).astype(np.int64)
        # Mix in-list hits, misses, and out-of-range vs (negative and
        # beyond the uint32 universe — must all be clean Falses).
        vs = rng.integers(-3, 2**20, 4000).astype(np.int64)
        vs[::97] = 2**33
        hit, verdicts, n_unique, stored = cache.probe_verdicts(us, vs)
        ref_hit, ref_verdicts = _sweep_reference(cache, us, vs)
        assert np.array_equal(hit, ref_hit)
        assert np.array_equal(verdicts, ref_verdicts)
        assert n_unique == len(np.unique(us[hit]))

    def test_empty_adjacency_entries_are_clean_misses(self):
        """A cached vertex with no neighbors answers False, not KeyError."""
        cache = HotSetCache(1 << 16)
        rng = np.random.default_rng(9)
        # admit_one rejects zero-byte blobs; a 1-neighbor entry plus a
        # probe for a different v exercises the same "nothing matches"
        # path the sweep takes.
        cache.admit_one(3, _entry(rng, 1), 4)
        hit, verdicts, n_unique, _ = cache.probe_verdicts(
            np.array([3, 4], dtype=np.int64), np.array([2**31, 0],
                                                       dtype=np.int64))
        assert hit.tolist() == [True, False]
        assert not verdicts[0]
        assert n_unique == 1

    def test_view_cached_until_generation_moves(self):
        cache = HotSetCache(1 << 16)
        blob = _entry(np.random.default_rng(10), 8)
        cache.admit_one(1, blob, blob.nbytes)
        v1 = cache.membership_view()
        assert cache.membership_view() is v1
        cache.evict(1)
        assert cache.membership_view() is None


def _verdict_bits(db, us, vs):
    return np.asarray(db.has_edge_batch(us, vs), dtype=bool)


def _run_config(tmp_path, graph, solution, us, vs, tag, *, hot,
                shards, executor):
    """Two warmed probe passes through one engine config; returns
    ``(pass1, pass2, disk_reads, bytes_read)``."""
    from repro.apps.edge_query import EdgeQueryEngine, ParallelEdgeQueryEngine
    from repro.storage import GraphStore, ShardedGraphStore

    if shards == 1 and executor == "thread":
        store = GraphStore(tmp_path / f"{tag}.log", compress=True,
                           use_mmap=True, hot_cache_bytes=hot)
        engine = EdgeQueryEngine(store, solution)
    else:
        store = ShardedGraphStore(tmp_path / f"{tag}.log", num_shards=shards,
                                  compress=True, use_mmap=True,
                                  hot_cache_bytes=hot)
        engine = ParallelEdgeQueryEngine(store, solution,
                                         executor=executor)
    try:
        store.bulk_load(graph)
        first = np.asarray(engine.has_edge_batch(us, vs), dtype=bool)
        second = np.asarray(engine.has_edge_batch(us, vs), dtype=bool)
        return first, second, store.stats.disk_reads, store.stats.bytes_read
    finally:
        if hasattr(engine, "close"):
            engine.close()
        store.close()


class TestHotColdParityGrid:
    """Hot-on vs hot-off must be bitwise identical for every solution."""

    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_graph(300, avg_degree=8, seed=42)

    @pytest.fixture(scope="class")
    def probes(self, graph):
        rng = np.random.default_rng(43)
        verts = np.sort(np.fromiter(graph.vertices(), dtype=np.int64))
        us = verts[rng.integers(0, len(verts), 4000)]
        vs = verts[rng.integers(0, len(verts), 4000)]
        return us, vs

    @pytest.mark.parametrize("method", sorted(available_solutions()))
    @pytest.mark.parametrize("shards,executor", [(1, "thread"),
                                                 (3, "thread")])
    def test_verdicts_and_counters_identical(self, tmp_path, graph, probes,
                                             method, shards, executor):
        us, vs = probes
        solution = create_solution(method, k=4)
        solution.build(graph)
        cold = _run_config(tmp_path, graph, solution, us, vs, "cold",
                           hot=0, shards=shards, executor=executor)
        hot = _run_config(tmp_path, graph, solution, us, vs, "hot",
                          hot=1 << 20, shards=shards, executor=executor)
        assert np.array_equal(cold[0], hot[0])
        assert np.array_equal(cold[1], hot[1])
        assert cold[2] == hot[2]
        assert cold[3] == hot[3]

    def test_process_executor_parity(self, tmp_path, graph, probes):
        """One process-pool config: verdicts and logical counters match
        the cold run even when reads happen in detached workers."""
        us, vs = probes
        solution = create_solution("hyb+", k=4)
        solution.build(graph)
        cold = _run_config(tmp_path, graph, solution, us, vs, "pcold",
                           hot=0, shards=2, executor="process")
        hot = _run_config(tmp_path, graph, solution, us, vs, "phot",
                          hot=1 << 20, shards=2, executor="process")
        assert np.array_equal(cold[0], hot[0])
        assert np.array_equal(cold[1], hot[1])
        assert cold[2:] == hot[2:]

    def test_mutation_invalidates_hot_entry(self, tmp_path, graph):
        with VendGraphDB(tmp_path / "mut.log", shards=2, compress=True,
                         use_mmap=True, hot_cache_bytes=1 << 20) as db:
            db.load_graph(graph)
            u, w = sorted(graph.edges())[0]  # a real edge: the probe
            # must reach storage (the filter cannot reject a positive),
            # so u's decoded adjacency gets admitted.
            v = next(x for x in sorted(graph.vertices()) if x != u
                     and not graph.has_edge(u, x))
            warm_us = np.array([u], dtype=np.int64)
            warm_vs = np.array([w], dtype=np.int64)
            for _ in range(3):  # warm the entry into the hot cache
                assert _verdict_bits(db, warm_us, warm_vs)[0]
            assert db.add_edge(u, v)
            assert _verdict_bits(db, np.array([u], dtype=np.int64),
                                 np.array([v], dtype=np.int64))[0]
            invalidations = sum(c.stats.invalidations
                                for c in db.hot_caches())
            assert invalidations >= 1
