"""Tests for pair/update workload generators and score evaluation."""

import pytest

from repro.core import HybridVend, exact_vend_score, vend_score
from repro.graph import Graph, erdos_renyi_graph, powerlaw_graph
from repro.workloads import (
    common_neighbor_pairs,
    mixed_pairs,
    random_pairs,
    sample_deletions,
    sample_insertions,
)


class TestRandomPairs:
    def test_count_and_distinct_vertices(self):
        g = erdos_renyi_graph(50, 100, seed=1)
        pairs = random_pairs(g, 500, seed=2)
        assert len(pairs) == 500
        assert all(u != v for u, v in pairs)
        assert all(g.has_vertex(u) and g.has_vertex(v) for u, v in pairs)

    def test_deterministic(self):
        g = erdos_renyi_graph(50, 100, seed=1)
        assert random_pairs(g, 50, seed=3) == random_pairs(g, 50, seed=3)

    def test_tiny_graph_rejected(self):
        g = Graph()
        g.add_vertex(1)
        with pytest.raises(ValueError):
            random_pairs(g, 5)


class TestCommonNeighborPairs:
    def test_pairs_share_a_neighbor(self):
        g = powerlaw_graph(200, avg_degree=8, seed=4)
        pairs = common_neighbor_pairs(g, 300, seed=5)
        assert len(pairs) == 300
        for u, v in pairs:
            assert u != v
            assert g.neighbors(u) & g.neighbors(v), (u, v)

    def test_requires_degree_two_vertex(self):
        g = Graph([(1, 2)])
        with pytest.raises(ValueError):
            common_neighbor_pairs(g, 5)

    def test_mixed_pairs_blend(self):
        g = powerlaw_graph(100, avg_degree=8, seed=6)
        pairs = mixed_pairs(g, 100, local_fraction=0.4, seed=7)
        assert len(pairs) == 100
        with pytest.raises(ValueError):
            mixed_pairs(g, 10, local_fraction=1.5)


class TestUpdates:
    def test_deletions_are_existing_edges(self):
        g = erdos_renyi_graph(40, 100, seed=8)
        deletions = sample_deletions(g, 30, seed=9)
        assert len(deletions) == 30
        assert len(set(map(frozenset, deletions))) == 30
        assert all(g.has_edge(u, v) for u, v in deletions)

    def test_deletions_all_edges_when_count_exceeds(self):
        g = erdos_renyi_graph(20, 30, seed=10)
        assert len(sample_deletions(g, 1000)) == 30

    def test_insertions_are_nonedges(self):
        g = erdos_renyi_graph(40, 100, seed=11)
        insertions = sample_insertions(g, 30, seed=12)
        assert len(insertions) == 30
        assert all(not g.has_edge(u, v) for u, v in insertions)
        assert all(u < v for u, v in insertions)

    def test_insertions_exhausted(self):
        g = Graph([(1, 2)])
        g.add_vertex(3)
        with pytest.raises(ValueError):
            sample_insertions(g, 100)


class TestScore:
    def test_exact_score_bounds(self):
        g = powerlaw_graph(100, avg_degree=8, seed=13)
        s = HybridVend(k=2)
        s.build(g)
        report = exact_vend_score(s, g)
        assert 0.0 <= report.score <= 1.0
        assert report.false_positives == 0
        assert report.nepairs + (report.pairs_evaluated - report.nepairs) \
            == report.pairs_evaluated

    def test_sampled_score_skips_self_pairs(self):
        g = erdos_renyi_graph(30, 60, seed=14)
        s = HybridVend(k=2)
        s.build(g)
        report = vend_score(s, g, [(1, 1), (1, 2)])
        assert report.pairs_evaluated == 1

    def test_score_of_empty_sample(self):
        g = erdos_renyi_graph(30, 60, seed=15)
        s = HybridVend(k=2)
        s.build(g)
        assert vend_score(s, g, []).score == 1.0
