"""Cross-solution property tests: invariants every method must share."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import SOLUTION_FACTORIES, make_solution
from repro.core import exact_vend_score
from repro.graph import erdos_renyi_graph, powerlaw_graph

ALL_METHODS = sorted(SOLUTION_FACTORIES)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, avg_degree=8, seed=150)


class TestSharedInvariants:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_determination_is_symmetric(self, graph, method):
        solution = make_solution(method, 2, graph)
        vertices = sorted(graph.vertices())[:40]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                assert solution.is_nonedge(u, v) == solution.is_nonedge(v, u)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_self_pair_never_claimed(self, graph, method):
        solution = make_solution(method, 2, graph)
        for v in list(graph.vertices())[:20]:
            assert not solution.is_nonedge(v, v)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_exact_score_report_is_clean(self, graph, method):
        solution = make_solution(method, 2, graph)
        report = exact_vend_score(solution, graph)
        assert report.false_positives == 0
        assert 0.0 <= report.score <= 1.0

    @pytest.mark.parametrize("method", ["hybrid", "hyb+", "range",
                                        "bit-hash", "SBF", "LBF"])
    def test_memory_grows_with_k(self, graph, method):
        small = make_solution(method, 2, graph).memory_bytes()
        large = make_solution(method, 8, graph).memory_bytes()
        assert large >= small


class TestScoreMonotonicity:
    @pytest.mark.parametrize("method", ["hybrid", "hyb+"])
    def test_score_grows_with_k(self, method):
        """More dimensions never hurt much (Fig. 7/8 trend)."""
        g = powerlaw_graph(200, avg_degree=12, seed=151)
        scores = []
        for k in (2, 4, 8):
            solution = make_solution(method, k, g)
            scores.append(exact_vend_score(solution, g).score)
        assert scores[2] >= scores[0] - 0.01
        assert scores[1] >= scores[0] - 0.02


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    method=st.sampled_from(["hybrid", "hyb+", "range", "bit-hash", "LBF"]),
)
def test_soundness_random_graphs_property(seed, method):
    """No method ever claims an existing edge is an NEpair."""
    g = erdos_renyi_graph(30, 120, seed=seed)
    solution = make_solution(method, 2, g)
    for u, v in g.edges():
        assert not solution.is_nonedge(u, v), (method, u, v)
