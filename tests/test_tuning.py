"""Tests for automatic k selection."""

import pytest

from repro.core import HybPlusVend, choose_k
from repro.graph import powerlaw_graph
from repro.workloads import common_neighbor_pairs, random_pairs


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(300, avg_degree=10, seed=120)


class TestChooseK:
    def test_easy_target_picks_small_k(self, graph):
        pairs = random_pairs(graph, 3000, seed=121)
        result = choose_k(graph, 0.5, pairs)
        assert result.target_met
        assert result.chosen_k == 2
        assert result.solution.k == 2
        assert len(result.steps) == 1

    def test_harder_target_climbs_ladder(self, graph):
        pairs = common_neighbor_pairs(graph, 3000, seed=122)
        easy = choose_k(graph, 0.3, pairs)
        hard = choose_k(graph, 0.95, pairs)
        assert hard.chosen_k >= easy.chosen_k
        assert [s.k for s in hard.steps] == sorted(s.k for s in hard.steps)

    def test_unreachable_target_returns_best(self):
        # A dense graph at small k cannot reach a perfect score on
        # local pairs: the ladder is exhausted, best step returned.
        dense = powerlaw_graph(200, avg_degree=25, seed=127)
        pairs = common_neighbor_pairs(dense, 4000, seed=123)
        result = choose_k(dense, 1.0, pairs, candidates=(2, 4))
        assert not result.target_met
        assert result.chosen_k in (2, 4)
        best = max(result.steps, key=lambda s: s.score)
        assert result.chosen_k == best.k

    def test_candidates_above_average_degree_skipped(self, graph):
        pairs = random_pairs(graph, 1000, seed=124)
        result = choose_k(graph, 1.0, pairs, candidates=(2, 64, 128))
        assert all(step.k == 2 for step in result.steps)

    def test_custom_solution_class(self, graph):
        pairs = random_pairs(graph, 1000, seed=125)
        result = choose_k(graph, 0.5, pairs, solution_cls=HybPlusVend)
        assert isinstance(result.solution, HybPlusVend)

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            choose_k(graph, 1.5, [(1, 2)])
        with pytest.raises(ValueError):
            choose_k(graph, 0.5, [])

    def test_memory_grows_with_k(self, graph):
        pairs = common_neighbor_pairs(graph, 2000, seed=126)
        result = choose_k(graph, 1.0, pairs, candidates=(2, 4, 8))
        memories = [s.memory_bytes for s in result.steps]
        assert memories == sorted(memories)
