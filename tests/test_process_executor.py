"""Process-pool query execution: parity, republication, publication.

The process executor must be observationally identical to the thread
executor (same verdicts, same QueryStats, same per-shard sums, same
StorageStats deltas) while doing its reads in detached workers over
shared-memory published state.  These tests drive both modes over the
same disk-backed stores and compare ledgers exactly.
"""

import pickle

import numpy as np
import pytest

from repro.apps.database import VendGraphDB
from repro.apps.edge_query import ParallelEdgeQueryEngine
from repro.core import HybPlusVend
from repro.core.batch import warm_batch_snapshot
from repro.graph import powerlaw_graph
from repro.obs import QueryStats
from repro.storage import ShardedGraphStore
from repro.storage.shm import (
    SharedObject,
    attach_shared,
    close_worker_attachments,
)

N = 400
QUERIES = 1500


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(N, avg_degree=6, seed=11)


@pytest.fixture(scope="module")
def workload(graph):
    rng = np.random.default_rng(5)
    verts = np.sort(np.fromiter(graph.vertices(), dtype=np.int64))
    us = rng.choice(verts, QUERIES)
    vs = rng.integers(0, N, QUERIES)
    return us, vs


def _db(tmp_path, graph, executor, name):
    db = VendGraphDB(tmp_path / f"{name}.log", shards=2, executor=executor,
                     compress=True, use_mmap=True)
    db.load_graph(graph)
    return db


_PARITY = ("total", "filtered", "executed", "positives",
           "cache_served", "disk_served")


class TestProcessThreadParity:
    def test_verdicts_and_stats_match(self, tmp_path, graph, workload):
        us, vs = workload
        with _db(tmp_path, graph, "process", "p") as proc, \
                _db(tmp_path, graph, "thread", "t") as thread:
            got = proc.has_edge_batch(us, vs)
            want = thread.has_edge_batch(us, vs)
            assert np.array_equal(got, want)
            ps, ts = proc.query_stats, thread.query_stats
            for field in _PARITY:
                assert getattr(ps, field) == getattr(ts, field), field
            # Per-shard sums stay exact despite coordinator-side booking.
            for field in ("total", "filtered", "executed", "positives",
                          "disk_served"):
                shard_sum = sum(getattr(s, field)
                                for s in proc.shard_query_stats)
                assert shard_sum == getattr(ps, field), field
            # Worker reads are booked into segment StorageStats too.
            pio = proc.storage_stats.snapshot()
            tio = thread.storage_stats.snapshot()
            assert pio["disk_reads"] == tio["disk_reads"]
            assert pio["bytes_read"] == tio["bytes_read"]

    def test_republish_after_mutations(self, tmp_path, graph, workload):
        us, vs = workload
        with _db(tmp_path, graph, "process", "p") as proc, \
                _db(tmp_path, graph, "thread", "t") as thread:
            proc.has_edge_batch(us, vs)
            thread.has_edge_batch(us, vs)
            verts = np.sort(np.fromiter(graph.vertices(), dtype=np.int64))
            for i in range(10):
                a, b = int(verts[i]), int(verts[-(i + 1)])
                proc.add_edge(a, b)
                thread.add_edge(a, b)
            got = proc.has_edge_batch(us, vs)
            want = thread.has_edge_batch(us, vs)
            assert np.array_equal(got, want)
            a, b = int(verts[0]), int(verts[-1])
            assert proc.has_edge(a, b) and thread.has_edge(a, b)

    def test_publication_reused_between_batches(self, tmp_path, graph,
                                                workload):
        us, vs = workload
        with _db(tmp_path, graph, "process", "p") as proc:
            proc.has_edge_batch(us, vs)
            engine = proc._engine
            names = {role: shared.meta["name"]
                     for role, shared in engine._published.items()}
            proc.has_edge_batch(us, vs)
            assert names == {role: shared.meta["name"]
                             for role, shared in engine._published.items()}


class TestProcessModeValidation:
    def test_rejects_in_memory_segments(self, graph):
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(graph)
        with pytest.raises(ValueError, match="DiskKVStore"):
            ParallelEdgeQueryEngine(store, executor="process")
        store.close()

    def test_rejects_cached_segments(self, tmp_path, graph):
        store = ShardedGraphStore(tmp_path / "kv.log", num_shards=2,
                                  cache_bytes=1 << 16)
        store.bulk_load(graph)
        with pytest.raises(ValueError, match="cache_bytes=0"):
            ParallelEdgeQueryEngine(store, executor="process")
        store.close()

    def test_rejects_unknown_executor(self, tmp_path, graph):
        store = ShardedGraphStore(tmp_path / "kv.log", num_shards=2)
        store.bulk_load(graph)
        with pytest.raises(ValueError, match="executor"):
            ParallelEdgeQueryEngine(store, executor="fibers")
        store.close()

    def test_database_requires_disk_path(self):
        with pytest.raises(ValueError, match="disk-backed"):
            VendGraphDB(executor="process")


class TestSharedObject:
    def test_roundtrip_is_readonly(self, graph):
        filt = HybPlusVend(k=6)
        filt.build(graph)
        warm_batch_snapshot(filt)
        shared = SharedObject(filt, "filter", 1)
        try:
            clone = attach_shared(shared.meta)
            us = np.array([1, 2, 3], dtype=np.int64)
            vs = np.array([4, 5, 6], dtype=np.int64)
            assert np.array_equal(clone.is_nonedge_batch(us, vs),
                                  filt.is_nonedge_batch(us, vs))
            snapshot = clone._batch_index
            assert snapshot is not None  # warmed snapshot travelled along
            arrays = [a for a in vars(snapshot).values()
                      if isinstance(a, np.ndarray) and a.size]
            assert arrays, "expected out-of-band numpy attributes"
            for arr in arrays:
                assert not arr.flags.writeable
        finally:
            close_worker_attachments()
            shared.close()

    def test_attach_cache_keyed_by_generation(self):
        first = SharedObject({"value": np.arange(10)}, "role-x", 1)
        second = SharedObject({"value": np.arange(20)}, "role-x", 2)
        try:
            a = attach_shared(first.meta)
            assert attach_shared(first.meta) is a  # cached
            b = attach_shared(second.meta)
            assert len(b["value"]) == 20  # new generation re-attached
        finally:
            close_worker_attachments()
            first.close()
            second.close()

    def test_stats_view_pickles_as_labels(self):
        view = QueryStats(store=object(), scope="engine7", shard="3")
        view.inc("total", 5)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.scope == "engine7"
        assert clone.__dict__["_label_values"]["shard"] == "3"
        assert clone.__dict__.get("_store") is None  # store not dragged
