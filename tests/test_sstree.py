"""Tests for the SIMD-oriented search tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sstree import SSTree

#: The paper's running example (Fig. 4/5): block of vertex 2.
FIG4_BLOCK = [4, 5, 14, 16, 17, 20, 50, 81, 129, 201, 322, 410, 521, 530]


class TestConstruction:
    def test_fig5_topology(self):
        tree = SSTree(FIG4_BLOCK, scalar=4)
        assert tree.num_nodes == 3  # |B⁻| = 12, s = 4
        assert tree.head == 4 and tree.tail == 530

    def test_fig5_node_keys(self):
        """Root keys must be {20, 322, 410, 521} exactly as in Fig. 5(b)."""
        tree = SSTree(FIG4_BLOCK, scalar=4)
        assert tree.node_keys[0] == [20, 322, 410, 521]
        assert tree.node_keys[1] == [5, 14, 16, 17]
        assert tree.node_keys[2] == [50, 81, 129, 201]

    def test_fig5_permutation(self):
        """P_B from Fig. 5(c)."""
        tree = SSTree(FIG4_BLOCK, scalar=4)
        assert tree.permutation() == [
            4, 530, 20, 322, 410, 521, 5, 14, 16, 17, 50, 81, 129, 201,
        ]

    def test_small_blocks(self):
        assert SSTree([7], scalar=4).permutation() == [7]
        assert SSTree([7, 9], scalar=4).permutation() == [7, 9]
        assert SSTree([7, 8, 9], scalar=4).num_nodes == 1

    def test_unsorted_block_rejected(self):
        with pytest.raises(ValueError):
            SSTree([3, 1, 2])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SSTree([1, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SSTree([])

    def test_scalar_too_small(self):
        with pytest.raises(ValueError):
            SSTree([1, 2, 3], scalar=1)

    def test_last_node_partial(self):
        block = list(range(1, 12))  # interior = 9, s = 4 -> nodes 4,4,1
        tree = SSTree(block, scalar=4)
        assert tree.num_nodes == 3
        assert [len(keys) for keys in tree.node_keys] == [4, 4, 1]

    def test_depth(self):
        tree = SSTree(FIG4_BLOCK, scalar=4)
        assert tree.depth == 2
        assert SSTree([1, 2], scalar=4).depth == 0


class TestSearch:
    def test_members_found(self):
        tree = SSTree(FIG4_BLOCK, scalar=4)
        for value in FIG4_BLOCK:
            assert tree.contains(value), value

    def test_non_members_rejected(self):
        tree = SSTree(FIG4_BLOCK, scalar=4)
        for value in (1, 6, 15, 19, 21, 200, 409, 522, 1000):
            assert not tree.contains(value), value

    @pytest.mark.parametrize("scalar", [2, 3, 4, 8, 16])
    def test_search_all_scalars(self, scalar):
        block = sorted({(i * 37) % 1000 + 1 for i in range(60)})
        tree = SSTree(block, scalar=scalar)
        members = set(block)
        for value in range(1, 1001):
            assert tree.contains(value) == (value in members)

    def test_bst_property(self):
        """In-order traversal of the tree yields the sorted interior."""
        block = list(range(10, 110))
        tree = SSTree(block, scalar=4)

        def in_order(node_id):
            if node_id is None or node_id > tree.num_nodes:
                return []
            keys = tree.node_keys[node_id - 1]
            out = []
            for i, key in enumerate(keys):
                out.extend(in_order(tree.child_id(node_id, i + 1)))
                out.append(key)
            out.extend(in_order(tree.child_id(node_id, len(keys) + 1)))
            return out

        assert in_order(1) == block[1:-1]


@settings(max_examples=100, deadline=None)
@given(
    st.sets(st.integers(1, 10**6), min_size=1, max_size=80),
    st.sampled_from([2, 4, 8]),
    st.integers(1, 10**6),
)
def test_sstree_membership_property(values, scalar, probe):
    """Tree search agrees with set membership for arbitrary blocks."""
    block = sorted(values)
    tree = SSTree(block, scalar=scalar)
    assert tree.contains(probe) == (probe in values)
    assert sorted(tree.permutation()) == block
