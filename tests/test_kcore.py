"""Tests for peeling and k-core decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, core_numbers, erdos_renyi_graph, peel, powerlaw_graph

from .conftest import paper_example_graph


class TestPeel:
    def test_fig2_peeling(self):
        """Peeling Fig. 2 at k=3 removes {5, 8} and keeps the red core."""
        g = paper_example_graph()
        result = peel(g, 3)
        assert result.core_vertices == {1, 2, 3, 4, 6, 7}
        assert set(result.round_of) == {5, 8}
        assert result.residual_neighbors[5] == [3]
        assert result.residual_neighbors[8] == [3, 7]

    def test_fig2_core_adjacency(self):
        g = paper_example_graph()
        result = peel(g, 3)
        assert result.core_adjacency[1] == [2, 3, 4, 6]
        assert result.core_adjacency[6] == [1, 2, 4, 7]
        assert result.core_edge_count() == 12

    def test_round_semantics_chain(self):
        """A path peels from both ends inward, one layer per round."""
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 5)])
        result = peel(g, 2)
        assert result.round_of[1] == 1
        assert result.round_of[5] == 1
        assert result.round_of[2] == 2
        assert result.round_of[4] == 2
        assert result.round_of[3] == 3
        assert result.core_vertices == set()

    def test_same_round_vertices_record_each_other(self):
        """Two adjacent degree-1 vertices both record the shared edge."""
        g = Graph([(1, 2)])
        result = peel(g, 2)
        assert result.round_of[1] == result.round_of[2] == 1
        assert result.residual_neighbors[1] == [2]
        assert result.residual_neighbors[2] == [1]

    def test_threshold_one_peels_isolated_only(self):
        g = Graph([(1, 2)])
        g.add_vertex(3)
        result = peel(g, 1)
        assert set(result.round_of) == {3}
        assert result.core_vertices == {1, 2}

    def test_input_graph_unmodified(self):
        g = Graph([(1, 2), (2, 3)])
        edges_before = sorted(g.edges())
        peel(g, 2)
        assert sorted(g.edges()) == edges_before

    def test_invalid_threshold(self):
        import pytest

        with pytest.raises(ValueError):
            peel(Graph(), 0)

    def test_core_degrees_at_least_threshold(self):
        g = powerlaw_graph(500, avg_degree=8, seed=11)
        result = peel(g, 4)
        for v in result.core_vertices:
            assert len(result.core_adjacency[v]) >= 4

    def test_residual_union_covers_all_edges(self):
        """Every original edge appears in some residual list or the core."""
        g = erdos_renyi_graph(80, 240, seed=9)
        result = peel(g, 4)
        recorded = set()
        for v, nbrs in result.residual_neighbors.items():
            for u in nbrs:
                recorded.add(frozenset((u, v)))
        for v, nbrs in result.core_adjacency.items():
            for u in nbrs:
                recorded.add(frozenset((u, v)))
        assert recorded == {frozenset(e) for e in g.edges()}


class TestCoreNumbers:
    def test_clique_core_numbers(self):
        g = Graph([(u, v) for u in range(1, 6) for v in range(u + 1, 6)])
        assert set(core_numbers(g).values()) == {4}

    def test_path_core_numbers(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        assert set(core_numbers(g).values()) == {1}

    def test_empty(self):
        assert core_numbers(Graph()) == {}

    def test_peel_matches_core_numbers(self):
        """peel(g, k) keeps exactly the vertices of core number >= k."""
        g = powerlaw_graph(400, avg_degree=10, seed=5)
        cores = core_numbers(g)
        for k in (2, 3, 5):
            result = peel(g, k)
            expected = {v for v, c in cores.items() if c >= k}
            assert result.core_vertices == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(1, 25), st.integers(1, 25)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=80,
    ),
    st.integers(1, 6),
)
def test_peel_partition_property(edges, threshold):
    """Peeled + core vertices partition V; core degrees >= threshold."""
    g = Graph(edges)
    result = peel(g, threshold)
    peeled = set(result.round_of)
    assert peeled | result.core_vertices == set(g.vertices())
    assert peeled & result.core_vertices == set()
    for v in result.core_vertices:
        assert len(result.core_adjacency[v]) >= threshold
    # Residual lists only reference vertices alive at removal time:
    # same round or later, or core vertices.
    for v, nbrs in result.residual_neighbors.items():
        for u in nbrs:
            if u in result.round_of:
                assert result.round_of[u] >= result.round_of[v]
