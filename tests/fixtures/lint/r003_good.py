"""R003 good: every mutation invalidates (directly or via super())."""


class VendSolution:
    def _invalidate_batch(self):
        pass


class FreshSnapshotSolution(VendSolution):
    name = "fresh"

    def build(self, graph):
        self._invalidate_batch()
        self.codes = {v: v for v in graph}

    def insert_edge(self, u, v, fetch):
        self._invalidate_batch()
        self.codes[u] = v

    def delete_edge(self, u, v, fetch):
        self._invalidate_batch()
        self.codes.pop(u, None)


class DerivedSolution(FreshSnapshotSolution):
    def insert_edge(self, u, v, fetch):
        super().insert_edge(u, v, fetch)

    def delete_vertex(self, v, fetch):
        self.build(None)
