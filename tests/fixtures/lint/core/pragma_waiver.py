"""Pragma fixture: an R001 violation waived with an inline reason."""

import numpy as np


def passthrough(values):
    return np.asarray(values)  # lint: disable=R001 (caller decides the dtype)
