"""R001 good: explicit dtypes everywhere; casts before cross-dtype math."""

import numpy as np


def untyped(values):
    return np.asarray(values, dtype=np.uint32)


def untyped_array(values):
    blob = np.array(values, dtype=np.uint32)
    return blob.tobytes()


def mixed_lanes(ids, n):
    lanes = np.asarray(ids, dtype=np.uint32)
    offsets = np.arange(n, dtype=np.int64)
    return lanes.astype(np.int64) + offsets
