"""R001 bad: untyped array constructors and signed/unsigned mixing.

Lives under a ``core/`` directory because R001 only applies to the
dtype-sensitive hot paths (core/, simd/, storage/).
"""

import numpy as np


def untyped(values):
    return np.asarray(values)


def untyped_array(values):
    blob = np.array(values)
    return blob.tobytes()


def mixed_lanes(ids, n):
    lanes = np.asarray(ids, dtype=np.uint32)
    offsets = np.arange(n, dtype=np.int64)
    return lanes + offsets
