"""R004 bad: unseeded randomness in benchmark-shaped code."""

import random

import numpy as np


def sample_everything(items):
    rng = np.random.default_rng()
    value = random.random()
    pick = random.Random()
    legacy = np.random.rand(4)
    return rng, value, pick, legacy, items
