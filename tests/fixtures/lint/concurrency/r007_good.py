"""R007 good: both classes agree Ledger._lock outranks Journal._lock."""
import threading


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.journal = Journal()

    def post(self):
        with self._lock:
            self.journal.append_entry()

    def balance(self):
        with self._lock:
            return 0


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.ledger: Ledger = None

    def append_entry(self):
        with self._lock:
            pass

    def reconcile(self):
        # Take the senior lock first, then our own: same global order
        # as Ledger.post, so no cycle.
        with self.ledger._lock:
            with self._lock:
                pass
