"""R011 bad: id() compared without keeping the objects alive — a freed
object's address can be reused, aliasing two distinct values."""


def same_object(a, b):
    return id(a) == id(b)
