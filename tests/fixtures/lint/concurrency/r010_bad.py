"""R010 bad: a frombuffer view over an mmap escapes the function that
mapped it — the caller holds a pointer into a buffer it cannot unmap."""
import mmap

import numpy as np


def codes(path):
    with open(path, "rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    return np.frombuffer(mm, dtype=np.uint8)
