"""R010 good: the escaping array is a copy, decoupled from the map."""
import mmap

import numpy as np


def codes(path):
    with open(path, "rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    return np.frombuffer(mm, dtype=np.uint8).copy()
