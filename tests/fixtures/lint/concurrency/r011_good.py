"""R011 good: identity tested with ``is``, no address escapes."""


def same_object(a, b):
    return a is b
