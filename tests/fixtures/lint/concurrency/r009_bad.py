"""R009 bad: raw acquire with the release outside any try/finally."""
import threading


class Door:
    def __init__(self):
        self._lock = threading.Lock()
        self.open_count = 0

    def enter(self):
        self._lock.acquire()
        self.open_count += 1
        self._lock.release()
