"""R012 good: the write lands under the lock, the fsync after it."""
import os
import threading


class Journal:
    def __init__(self, fh):
        self._lock = threading.Lock()
        self._fh = fh

    def commit(self, data):
        with self._lock:
            self._fh.write(data)
        os.fsync(self._fh.fileno())
