"""R007 bad: two classes acquire each other's locks in opposite orders."""
import threading


class Ledger:
    def __init__(self):
        self._lock = threading.Lock()
        self.journal = Journal()

    def post(self):
        with self._lock:
            self.journal.append_entry()

    def balance(self):
        with self._lock:
            return 0


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.ledger: Ledger = None

    def append_entry(self):
        with self._lock:
            pass

    def reconcile(self):
        with self._lock:
            self.ledger.balance()
