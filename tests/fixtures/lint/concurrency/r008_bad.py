"""R008 bad: a guarded attribute is mutated outside its lock."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: self._lock

    def bump(self):
        with self._lock:
            self._count += 1

    def sloppy_bump(self):
        self._count += 1
