"""R009 good: raw acquire immediately followed by try/finally release."""
import threading


class Door:
    def __init__(self):
        self._lock = threading.Lock()
        self.open_count = 0

    def enter(self):
        self._lock.acquire()
        try:
            self.open_count += 1
        finally:
            self._lock.release()
