"""R012 bad: fsync (milliseconds of latency) under an exclusive lock
serializes every other thread behind the disk."""
import os
import threading


class Journal:
    def __init__(self, fh):
        self._lock = threading.Lock()
        self._fh = fh

    def commit(self, data):
        with self._lock:
            self._fh.write(data)
            os.fsync(self._fh.fileno())
