"""R008 good: every mutation of the guarded attribute holds the lock."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: self._lock

    def bump(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._lock.acquire()
        try:
            self._count = 0
        finally:
            self._lock.release()
