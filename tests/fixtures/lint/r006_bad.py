"""R006 fixture: counters mutated directly instead of via the registry."""


class Engine:
    def __init__(self, stats, fault_stats):
        self.stats = stats
        self.fault_stats = fault_stats

    def serve(self, hits):
        self.stats.total += 1
        self.stats.cache_served += hits
        self.fault_stats.retries = 3
