"""R005 bad: bare excepts and swallowed corruption."""


class CorruptRecordError(RuntimeError):
    pass


def read_all(records):
    out = []
    for blob in records:
        try:
            out.append(blob.decode())
        except:
            continue
    return out


def first_value(store):
    try:
        return store.get(1)
    except CorruptRecordError:
        return None


def flush_quietly(store):
    try:
        store.flush()
    except Exception:
        pass
