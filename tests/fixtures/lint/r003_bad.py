"""R003 bad: mutating methods that never drop the cached batch snapshot.

Exactly the bug class the batched query pipeline had to guard against
by hand: codes change but ``is_nonedge_batch`` keeps answering from the
stale columnar snapshot.
"""


class VendSolution:
    def _invalidate_batch(self):
        pass


class StaleSnapshotSolution(VendSolution):
    name = "stale"

    def build(self, graph):
        self.codes = {v: v for v in graph}

    def insert_edge(self, u, v, fetch):
        self.codes[u] = v

    def delete_edge(self, u, v, fetch):
        self.codes.pop(u, None)
