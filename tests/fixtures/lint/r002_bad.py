"""R002 bad: a registered solution shipping half its interface.

Missing the batch snapshot path and any maintenance declaration, so a
new solution cannot silently drop out of the batched query pipeline or
the update story.
"""


def register_solution(cls):
    return cls


@register_solution
class HalfSolution:
    name = "half"

    def build(self, graph):
        self._invalidate_batch()

    def _invalidate_batch(self):
        pass

    def is_nonedge(self, u, v):
        return False

    def memory_bytes(self):
        return 0
