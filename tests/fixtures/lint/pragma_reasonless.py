"""R000-style fixture: a waiver pragma with no reason is itself flagged."""


def same_object(a, b):
    return id(a) == id(b)  # lint: disable=R011
