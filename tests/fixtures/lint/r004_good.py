"""R004 good: every RNG is explicitly seeded."""

import random

import numpy as np


def sample_everything(items, seed=0):
    rng = np.random.default_rng(seed)
    pick = random.Random(seed)
    value = pick.random()
    draws = rng.uniform(size=4)
    return rng, value, pick, draws, items
