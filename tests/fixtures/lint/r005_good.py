"""R005 good: concrete exceptions; corruption propagates."""


class CorruptRecordError(RuntimeError):
    pass


def read_all(records):
    out = []
    for blob in records:
        try:
            out.append(blob.decode())
        except UnicodeDecodeError:
            out.append("")
    return out


def first_value(store):
    try:
        return store.get(1)
    except CorruptRecordError as exc:
        store.mark_degraded()
        raise RuntimeError("store is corrupt") from exc


def flush_quietly(store, log):
    try:
        store.flush()
    except OSError as exc:
        log.warning("flush failed: %s", exc)
