"""R002 good: the same solution with the full registered interface."""


def register_solution(cls):
    return cls


@register_solution
class FullSolution:
    name = "full"

    #: Static solution: mutations are handled by rebuilding.
    supports_maintenance = False

    def build(self, graph):
        self._invalidate_batch()

    def _invalidate_batch(self):
        pass

    def is_nonedge(self, u, v):
        return False

    def is_nonedge_batch(self, pairs_u, pairs_v=None):
        return [False]

    def memory_bytes(self):
        return 0
