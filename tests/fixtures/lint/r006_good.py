"""R006 fixture: counter mutation routed through the registry views.

A local result record (a plain variable, not a ``self`` stats holder)
may still be assigned directly — it is a report, not a live counter.
"""


class Engine:
    def __init__(self, stats, fault_stats):
        self.stats = stats
        self.fault_stats = fault_stats

    def serve(self, hits):
        self.stats.inc("total")
        self.stats.inc("cache_served", hits)
        self.fault_stats.inc("retries", 3)

    def report(self, receipt):
        stats = {"disk_reads": 0}
        stats["disk_reads"] = receipt.disk_reads
        return stats
