"""Equivalence and attribution tests for the parallel query engine.

The contract under test: for every registered solution and any
(shards, workers) configuration, :class:`ParallelEdgeQueryEngine`
returns **bitwise-identical** verdicts to the serial
:class:`EdgeQueryEngine` over the same store contents — including
after maintenance (inserts/deletes) — and its stats views book exactly
the same totals, with per-shard attribution summing to the engine
totals even when the work actually ran on pool threads.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.apps.edge_query import EdgeQueryEngine, ParallelEdgeQueryEngine
from repro.bench import make_solution
from repro.core import available_solutions
from repro.graph import powerlaw_graph
from repro.storage import GraphStore, ShardedGraphStore
from repro.workloads import common_neighbor_pairs, random_pairs

ALL_SOLUTIONS = sorted(available_solutions())
PARITY_FIELDS = ("total", "filtered", "executed", "positives",
                 "cache_served", "disk_served")


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(300, avg_degree=6, seed=11)


@pytest.fixture(scope="module")
def workload(graph):
    pairs = (random_pairs(graph, 400, seed=1)
             + common_neighbor_pairs(graph, 200, seed=2)
             + sorted(graph.edges())[:200])
    us = np.asarray([p[0] for p in pairs], dtype=np.int64)
    vs = np.asarray([p[1] for p in pairs], dtype=np.int64)
    return us, vs


def _build_engines(graph, solution, shards, workers):
    serial_store = GraphStore()
    serial_store.bulk_load(graph)
    serial = EdgeQueryEngine(serial_store, nonedge_filter=solution)
    sharded_store = ShardedGraphStore(num_shards=shards)
    sharded_store.bulk_load(graph)
    parallel = ParallelEdgeQueryEngine(sharded_store,
                                       nonedge_filter=solution,
                                       workers=workers)
    return serial, parallel


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("method", ALL_SOLUTIONS)
    @pytest.mark.parametrize("shards,workers",
                             [(1, 1), (2, 1), (2, 4), (4, 1), (4, 4)])
    def test_every_solution_every_config(self, graph, workload, method,
                                         shards, workers):
        us, vs = workload
        solution = make_solution(method, 4, graph)
        serial, parallel = _build_engines(graph, solution, shards, workers)
        with parallel:
            want = serial.has_edge_batch(us, vs)
            got = parallel.has_edge_batch(us, vs)
            assert got.dtype == want.dtype
            assert (got == want).all()

    @pytest.mark.parametrize("method", ["hyb+", "hash"])
    def test_equivalence_survives_maintenance(self, graph, method):
        """Inserts and deletes routed through both stores must leave
        the engines bitwise-identical on a fresh sweep."""
        from repro.workloads import sample_deletions, sample_insertions

        solution = make_solution(method, 4, graph)
        serial, parallel = _build_engines(graph, solution, 4, 4)
        mutated = powerlaw_graph(300, avg_degree=6, seed=11)
        with parallel:
            for u, v in sample_insertions(graph, 20, seed=3):
                serial.store.insert_edge(u, v)
                parallel.store.insert_edge(u, v)
                mutated.add_edge(u, v)
            for u, v in sample_deletions(graph, 20, seed=4):
                serial.store.delete_edge(u, v)
                parallel.store.delete_edge(u, v)
                mutated.remove_edge(u, v)
            solution.build(mutated)  # rebuild codes on the mutated graph
            pairs = random_pairs(mutated, 500, seed=5)
            us = np.asarray([p[0] for p in pairs], dtype=np.int64)
            vs = np.asarray([p[1] for p in pairs], dtype=np.int64)
            want = serial.has_edge_batch(us, vs)
            got = parallel.has_edge_batch(us, vs)
            assert (got == want).all()

    def test_empty_batch(self, graph):
        solution = make_solution("hyb+", 4, graph)
        _, parallel = _build_engines(graph, solution, 4, 4)
        with parallel:
            empty = np.zeros(0, dtype=np.int64)
            assert parallel.has_edge_batch(empty, empty).tolist() == []
            assert parallel.stats.total == 0


class TestStatsParity:
    def test_parallel_books_exactly_serial_totals(self, graph, workload):
        us, vs = workload
        solution = make_solution("hyb+", 4, graph)
        serial, parallel = _build_engines(graph, solution, 4, 4)
        with parallel:
            serial.has_edge_batch(us, vs)
            parallel.has_edge_batch(us, vs)
            for field in PARITY_FIELDS:
                assert getattr(parallel.stats, field) == \
                    getattr(serial.stats, field), field

    def test_per_shard_attribution_sums_to_engine_totals(self, graph,
                                                         workload):
        us, vs = workload
        solution = make_solution("hyb+", 4, graph)
        _, parallel = _build_engines(graph, solution, 4, 4)
        with parallel:
            parallel.has_edge_batch(us, vs)
            parallel.has_edge(int(us[0]), int(vs[0]))  # scalar dual-books
            for field in PARITY_FIELDS:
                shard_sum = sum(getattr(view, field)
                                for view in parallel.shard_stats)
                assert shard_sum == getattr(parallel.stats, field), field

    def test_attribution_exact_under_concurrent_batches(self, graph,
                                                        workload):
        """Two caller threads hammer one engine; the shard ledgers must
        still sum exactly to the engine totals (no lost increments)."""
        us, vs = workload
        solution = make_solution("hyb+", 4, graph)
        _, parallel = _build_engines(graph, solution, 4, 2)
        rounds = 8
        with parallel:
            want = parallel.has_edge_batch(us, vs)

            def hammer(_):
                for _ in range(rounds):
                    got = parallel.has_edge_batch(us, vs)
                    assert (got == want).all()

            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(hammer, range(2)))
            expected_total = (2 * rounds + 1) * len(us)
            assert parallel.stats.total == expected_total
            for field in PARITY_FIELDS:
                shard_sum = sum(getattr(view, field)
                                for view in parallel.shard_stats)
                assert shard_sum == getattr(parallel.stats, field), field


class TestEngineApi:
    def test_workers_default_to_shard_count(self, graph):
        solution = make_solution("hyb+", 4, graph)
        store = ShardedGraphStore(num_shards=3)
        store.bulk_load(graph)
        with ParallelEdgeQueryEngine(store, nonedge_filter=solution) as eng:
            assert eng.workers == 3

    def test_rejects_bad_worker_count(self, graph):
        store = ShardedGraphStore(num_shards=2)
        store.bulk_load(graph)
        with pytest.raises(ValueError):
            ParallelEdgeQueryEngine(store, workers=0)

    def test_scalar_has_edge_matches_store(self, graph):
        solution = make_solution("hyb+", 4, graph)
        serial, parallel = _build_engines(graph, solution, 4, 4)
        edges = sorted(graph.edges())[:50]
        with parallel:
            for u, v in edges:
                assert parallel.has_edge(u, v) == serial.has_edge(u, v)
