"""Edge-case tests for the hybrid family's less-traveled paths."""

import pytest

from repro.core import HybPlusVend, HybridVend
from repro.graph import Graph, erdos_renyi_graph

from .conftest import assert_no_false_positives, paper_example_graph


class TestCodeWidths:
    @pytest.mark.parametrize("int_bits", [16, 32, 64])
    def test_all_int_widths_sound(self, int_bits):
        g = erdos_renyi_graph(60, 300, seed=140)
        s = HybridVend(k=4, int_bits=int_bits)
        s.build(g)
        assert s.total_bits == 4 * int_bits
        assert_no_false_positives(s, g)

    def test_invalid_int_bits(self):
        with pytest.raises(ValueError):
            HybridVend(k=2, int_bits=12)


class TestDegenerateGraphs:
    def test_single_edge_graph(self):
        g = Graph([(1, 2)])
        s = HybridVend(k=2)
        s.build(g)
        assert not s.is_nonedge(1, 2)

    def test_isolated_vertices(self):
        g = Graph([(1, 2)])
        g.add_vertex(3)
        g.add_vertex(4)
        s = HybridVend(k=2)
        s.build(g)
        assert s.is_nonedge(3, 4)
        assert s.is_nonedge(3, 1)

    def test_star_graph(self):
        g = Graph([(1, v) for v in range(2, 40)])
        s = HybridVend(k=2)
        s.build(g)
        assert_no_false_positives(s, g)
        # All leaves are pairwise NEpairs, fully peeled -> all detected.
        assert s.is_nonedge(2, 3)

    def test_clique(self):
        g = Graph([
            (u, v) for u in range(1, 12) for v in range(u + 1, 12)
        ])
        s = HybridVend(k=2)
        s.build(g)
        assert_no_false_positives(s, g)


class TestMaintenanceEdgeCases:
    def test_delete_last_edge_leaves_empty_code(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        s = HybridVend(k=2)
        s.build(g)
        g.remove_edge(1, 2)
        s.delete_edge(1, 2, g.sorted_neighbors)
        g.remove_edge(1, 3)
        s.delete_edge(1, 3, g.sorted_neighbors)
        # Vertex 1 now has no edges; all its pairs must be detectable.
        assert s.is_nonedge(1, 2)
        assert s.is_nonedge(1, 3)

    def test_insert_between_two_new_vertices(self):
        g = paper_example_graph()
        s = HybridVend(k=2)
        s.build(g)
        g.add_vertex(9)
        g.add_vertex(10)
        g.add_edge(9, 10)
        s.insert_edge(9, 10, g.sorted_neighbors)
        assert not s.is_nonedge(9, 10)
        assert s.is_nonedge(9, 1)

    def test_reinsert_after_delete_roundtrip(self):
        g = paper_example_graph()
        s = HybridVend(k=2)
        s.build(g)
        fetch = g.sorted_neighbors
        g.remove_edge(5, 3)
        s.delete_edge(5, 3, fetch)
        assert s.is_nonedge(5, 3)
        g.add_edge(5, 3)
        s.insert_edge(5, 3, fetch)
        assert not s.is_nonedge(5, 3)

    def test_delete_nonexistent_edge_is_safe(self):
        g = paper_example_graph()
        s = HybridVend(k=2)
        s.build(g)
        s.delete_edge(1, 7, g.sorted_neighbors)  # (1,7) was never an edge
        assert_no_false_positives(s, g)


class TestHybPlusRetry:
    def test_optimistic_estimate_triggers_retry(self):
        """An over-optimistic size estimate makes _try_encode overflow;
        the encoder must shrink the block cap and still emit a sound,
        parseable code."""

        class Overconfident(HybPlusVend):
            def _estimated_slot_bits(self, block_size):
                # Pretend every block leaves plenty of slot room.
                return max(1, self.total_bits - self._core_header - 8)

        g = erdos_renyi_graph(60, 400, seed=141)
        s = Overconfident(k=2, id_bits=16)
        s.build(g)
        assert_no_false_positives(s, g)
        for v in g.vertices():
            if not s.is_decodable(v):
                *_rest, m = s._parse_core(s.code_of(v))
                assert m >= 1

    def test_core_layout_roundtrip(self):
        """core_layout must recover exactly the encoded neighbor block."""
        g = erdos_renyi_graph(80, 700, seed=142)
        for cls in (HybridVend, HybPlusVend):
            s = cls(k=4, id_bits=10)
            s.build(g)
            for v in list(g.vertices())[:30]:
                if s.is_decodable(v):
                    continue
                code = s.code_of(v)
                _kind, members, _off, m = s.core_layout(code)
                neighbors = set(g.sorted_neighbors(v))
                assert set(members) <= neighbors
                assert m >= 1
                # Every member must fail the NE-test (it is recorded).
                for member in members:
                    assert not s.ne_test(member, code)

    def test_core_layout_rejects_decodable(self):
        g = paper_example_graph()
        s = HybridVend(k=2)
        s.build(g)
        with pytest.raises(ValueError):
            s.core_layout(s.code_of(5))
