"""Tests for the clustering-coefficient application."""

import pytest

from repro.apps import average_clustering, local_clustering
from repro.core import HybridVend
from repro.graph import Graph, powerlaw_graph
from repro.storage import GraphStore


def reference_local(graph, v):
    neighbors = graph.sorted_neighbors(v)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    closed = sum(
        1
        for i, u in enumerate(neighbors)
        for w in neighbors[i + 1:]
        if graph.has_edge(u, w)
    )
    return 2.0 * closed / (degree * (degree - 1))


@pytest.fixture
def stored(tmp_path):
    graph = powerlaw_graph(150, avg_degree=8, seed=60)
    store = GraphStore(tmp_path / "c.log")
    store.bulk_load(graph)
    yield graph, store
    store.close()


class TestLocalClustering:
    def test_triangle_is_fully_clustered(self):
        graph = Graph([(1, 2), (2, 3), (1, 3)])
        store = GraphStore()
        store.bulk_load(graph)
        assert local_clustering(store, 1) == 1.0

    def test_star_center_is_zero(self):
        graph = Graph([(1, 2), (1, 3), (1, 4)])
        store = GraphStore()
        store.bulk_load(graph)
        assert local_clustering(store, 1) == 0.0
        assert local_clustering(store, 2) == 0.0  # degree 1

    def test_matches_reference(self, stored):
        graph, store = stored
        for v in list(graph.vertices())[:30]:
            assert local_clustering(store, v) == pytest.approx(
                reference_local(graph, v)
            )

    def test_vend_does_not_change_result(self, stored):
        graph, store = stored
        vend = HybridVend(k=4)
        vend.build(graph)
        for v in list(graph.vertices())[:20]:
            assert local_clustering(store, v, vend) == pytest.approx(
                local_clustering(store, v)
            )


class TestAverageClustering:
    def test_average_with_and_without_vend(self, stored):
        graph, store = stored
        vend = HybridVend(k=4)
        vend.build(graph)
        sample = sorted(graph.vertices())[:60]
        plain = average_clustering(store, vertices=sample)
        fast = average_clustering(store, vend, vertices=sample)
        assert fast.coefficient == pytest.approx(plain.coefficient)
        assert fast.filtered_queries > 0
        assert fast.disk_reads < plain.disk_reads
        assert plain.vertices == fast.vertices == 60

    def test_empty_store(self):
        store = GraphStore()
        stats = average_clustering(store)
        assert stats.coefficient == 0.0
        assert stats.vertices == 0
