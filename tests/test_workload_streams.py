"""Streaming workload generators: determinism, validity, execution.

The streams exist to drive the hot cache and its tuner reproducibly,
so the first-class property is *byte determinism*: the same seed must
yield the identical stream on any run, process, and ``PYTHONHASHSEED``.
The second is *validity*: churn/mixed writes must be applicable in
stream order (inserts of non-edges, deletes of live edges) without
reference to the store executing them.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.database import VendGraphDB
from repro.graph import Graph, powerlaw_graph
from repro.workloads.runner import run_stream
from repro.workloads.streams import (
    OP_DELETE,
    OP_INSERT,
    OP_PROBE,
    STREAM_KINDS,
    edge_stream,
    make_stream,
    zipfian_stream,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(200, avg_degree=6, seed=7)


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(STREAM_KINDS))
    def test_same_seed_same_stream(self, graph, kind):
        a = make_stream(kind, graph, 2000, seed=5)
        b = make_stream(kind, graph, 2000, seed=5)
        assert a.checksum() == b.checksum()
        c = make_stream(kind, graph, 2000, seed=6)
        assert a.checksum() != c.checksum()

    @given(seed=st.integers(0, 2**31 - 1),
           kind=st.sampled_from(sorted(STREAM_KINDS)))
    @settings(max_examples=20, deadline=None)
    def test_checksum_is_a_pure_function_of_seed(self, graph, seed, kind):
        a = make_stream(kind, graph, 300, seed=seed)
        b = make_stream(kind, graph, 300, seed=seed)
        assert a.checksum() == b.checksum()
        assert np.array_equal(a.kinds, b.kinds)
        assert np.array_equal(a.us, b.us)
        assert np.array_equal(a.vs, b.vs)

    def test_hash_seed_independent(self, graph):
        """Checksums must not vary with PYTHONHASHSEED: generators use
        numpy RNG and sorted vertex order, never Python ``hash()``."""
        edges = sorted(graph.edges())
        code = (
            "from repro.graph import Graph;"
            "from repro.workloads.streams import make_stream;"
            f"g = Graph({edges!r});"
            "print([make_stream(k, g, 400, seed=9).checksum()"
            "       for k in ('random','zipfian','edges','churn','mixed')])"
        )
        outs = set()
        for seed in ("0", "1", "31337"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            )
            outs.add(out.stdout.strip())
        assert len(outs) == 1


class TestStreamShape:
    def test_op_counts_total(self, graph):
        stream = make_stream("churn", graph, 3000, seed=1)
        counts = stream.op_counts()
        assert sum(counts.values()) == len(stream) == 3000
        assert counts["insert"] > 0 and counts["delete"] > 0

    def test_segments_partition_the_stream(self, graph):
        stream = make_stream("mixed", graph, 1500, seed=2)
        covered = 0
        for kind, start, end in stream.segments():
            assert end > start == covered
            assert (stream.kinds[start:end] == kind).all()
            covered = end
        assert covered == len(stream)

    def test_unknown_kind_raises(self, graph):
        with pytest.raises(ValueError, match="unknown workload"):
            make_stream("nope", graph, 10)

    def test_zipfian_burst_and_rotation(self, graph):
        burst = zipfian_stream(graph, 1000, seed=3, burst_len=10)
        # Bursts repeat the drawn key back-to-back.
        assert (burst.us[:10] == burst.us[0]).all()
        drift = zipfian_stream(graph, 1000, seed=3, rotate_every=100)
        static = zipfian_stream(graph, 1000, seed=3)
        assert not np.array_equal(drift.us, static.us)
        # Zipf skew concentrates mass: the top key dominates uniform.
        top_share = np.bincount(static.us).max() / len(static)
        assert top_share > 5.0 / len(np.unique(static.us))

    def test_edge_stream_probes_only_real_edges(self, graph):
        stream = edge_stream(graph, 800, seed=4)
        assert (stream.kinds == OP_PROBE).all()
        assert all(graph.has_edge(int(u), int(v))
                   for u, v in zip(stream.us, stream.vs))


class TestWriteValidity:
    @pytest.mark.parametrize("kind", ["churn", "mixed"])
    def test_writes_apply_cleanly_in_order(self, graph, kind):
        """Replay against a shadow graph: every insert is a fresh
        non-edge, every delete hits a live edge, at its stream position."""
        stream = make_stream(kind, graph, 4000, seed=8)
        shadow = Graph(sorted(graph.edges()))
        for k, u, v in zip(stream.kinds.tolist(), stream.us.tolist(),
                           stream.vs.tolist()):
            if k == OP_INSERT:
                assert not shadow.has_edge(u, v)
                shadow.add_edge(u, v)
            elif k == OP_DELETE:
                assert shadow.has_edge(u, v)
                shadow.remove_edge(u, v)


class TestRunner:
    def test_run_stream_matches_ground_truth(self, tmp_path, graph):
        stream = make_stream("mixed", graph, 2500, seed=10)
        with VendGraphDB(tmp_path / "run.log", shards=2, compress=True,
                         use_mmap=True, hot_cache_bytes=1 << 20) as db:
            db.load_graph(graph)
            result = run_stream(db, stream, batch_size=512)
        counts = stream.op_counts()
        assert result.probes == counts["probe"]
        assert result.inserts == counts["insert"]
        assert result.deletes == counts["delete"]
        assert len(result.verdicts) == counts["probe"]
        # Ground truth: replay the same stream against a shadow graph.
        shadow = Graph(sorted(graph.edges()))
        expected = []
        for k, u, v in zip(stream.kinds.tolist(), stream.us.tolist(),
                           stream.vs.tolist()):
            if k == OP_PROBE:
                expected.append(shadow.has_edge(u, v))
            elif k == OP_INSERT:
                shadow.add_edge(u, v)
            else:
                shadow.remove_edge(u, v)
        assert result.verdicts.tolist() == expected
        assert result.positives == sum(expected)

    def test_same_seed_same_verdict_checksum(self, tmp_path, graph):
        checksums = set()
        for run in range(2):
            stream = make_stream("churn", graph, 2000, seed=11)
            with VendGraphDB(tmp_path / f"det{run}.log", shards=2,
                             compress=True, use_mmap=True,
                             hot_cache_bytes=1 << 20) as db:
                db.load_graph(graph)
                checksums.add(run_stream(db, stream).verdict_checksum())
        assert len(checksums) == 1
