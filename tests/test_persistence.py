"""Tests for index save/load."""

import pytest

from repro.core import (
    HybPlusVend,
    HybridVend,
    IndexFormatError,
    RangeVend,
    load_index,
    save_index,
)
from repro.graph import powerlaw_graph

from .conftest import all_pairs


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, avg_degree=8, seed=30)


@pytest.mark.parametrize("cls", [HybridVend, HybPlusVend])
def test_roundtrip_answers_identically(tmp_path, graph, cls):
    original = cls(k=4)
    original.build(graph)
    path = tmp_path / "index.vend"
    written = save_index(original, path)
    assert written == path.stat().st_size
    restored = load_index(path)
    assert type(restored) is cls
    assert restored.k == original.k
    assert restored.id_bits == original.id_bits
    assert restored.num_codes == original.num_codes
    for u, v in all_pairs(graph):
        assert restored.is_nonedge(u, v) == original.is_nonedge(u, v)


def test_restored_index_supports_maintenance(tmp_path, graph):
    original = HybridVend(k=4)
    original.build(graph)
    path = tmp_path / "index.vend"
    save_index(original, path)
    restored = load_index(path)
    work = graph.copy()
    pair = next(
        (u, v) for u, v in all_pairs(work)
        if not work.has_edge(u, v) and restored.is_nonedge(u, v)
    )
    work.add_edge(*pair)
    restored.insert_edge(*pair, work.sorted_neighbors)
    assert not restored.is_nonedge(*pair)


def test_unbuilt_index_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_index(HybridVend(k=4), tmp_path / "x.vend")


def test_wrong_type_rejected(tmp_path, graph):
    solution = RangeVend(k=4)
    solution.build(graph)
    with pytest.raises(TypeError):
        save_index(solution, tmp_path / "x.vend")


def test_bad_magic(tmp_path):
    path = tmp_path / "junk.vend"
    path.write_bytes(b"NOTANIDX" + b"\0" * 64)
    with pytest.raises(IndexFormatError, match="magic"):
        load_index(path)


def test_truncated_header(tmp_path):
    path = tmp_path / "tiny.vend"
    path.write_bytes(b"REPROVND")
    with pytest.raises(IndexFormatError, match="truncated"):
        load_index(path)


def test_truncated_body(tmp_path, graph):
    original = HybridVend(k=2)
    original.build(graph)
    path = tmp_path / "cut.vend"
    save_index(original, path)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(IndexFormatError, match="expected"):
        load_index(path)


def test_scalar_preserved_for_hybplus(tmp_path, graph):
    original = HybPlusVend(k=4, scalar=8)
    original.build(graph)
    path = tmp_path / "s8.vend"
    save_index(original, path)
    restored = load_index(path)
    assert restored.scalar == 8
