"""Tests for index save/load."""

import pytest

from repro.core import (
    HybPlusVend,
    HybridVend,
    IndexFormatError,
    RangeVend,
    load_index,
    save_index,
)
from repro.graph import powerlaw_graph

from .conftest import all_pairs


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, avg_degree=8, seed=30)


@pytest.mark.parametrize("cls", [HybridVend, HybPlusVend])
def test_roundtrip_answers_identically(tmp_path, graph, cls):
    original = cls(k=4)
    original.build(graph)
    path = tmp_path / "index.vend"
    written = save_index(original, path)
    assert written == path.stat().st_size
    restored = load_index(path)
    assert type(restored) is cls
    assert restored.k == original.k
    assert restored.id_bits == original.id_bits
    assert restored.num_codes == original.num_codes
    for u, v in all_pairs(graph):
        assert restored.is_nonedge(u, v) == original.is_nonedge(u, v)


def test_restored_index_supports_maintenance(tmp_path, graph):
    original = HybridVend(k=4)
    original.build(graph)
    path = tmp_path / "index.vend"
    save_index(original, path)
    restored = load_index(path)
    work = graph.copy()
    pair = next(
        (u, v) for u, v in all_pairs(work)
        if not work.has_edge(u, v) and restored.is_nonedge(u, v)
    )
    work.add_edge(*pair)
    restored.insert_edge(*pair, work.sorted_neighbors)
    assert not restored.is_nonedge(*pair)


def test_unbuilt_index_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_index(HybridVend(k=4), tmp_path / "x.vend")


def test_wrong_type_rejected(tmp_path, graph):
    solution = RangeVend(k=4)
    solution.build(graph)
    with pytest.raises(TypeError):
        save_index(solution, tmp_path / "x.vend")


def test_bad_magic(tmp_path):
    path = tmp_path / "junk.vend"
    path.write_bytes(b"NOTANIDX" + b"\0" * 64)
    with pytest.raises(IndexFormatError, match="magic"):
        load_index(path)


def test_truncated_header(tmp_path):
    path = tmp_path / "tiny.vend"
    path.write_bytes(b"REPROVND")
    with pytest.raises(IndexFormatError, match="truncated"):
        load_index(path)


def test_truncated_body(tmp_path, graph):
    original = HybridVend(k=2)
    original.build(graph)
    path = tmp_path / "cut.vend"
    save_index(original, path)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(IndexFormatError, match="expected"):
        load_index(path)


def test_scalar_preserved_for_hybplus(tmp_path, graph):
    original = HybPlusVend(k=4, scalar=8)
    original.build(graph)
    path = tmp_path / "s8.vend"
    save_index(original, path)
    restored = load_index(path)
    assert restored.scalar == 8


class TestCrashSafePersistence:
    """save_index must never destroy the previous good index."""

    def _saved(self, tmp_path, graph, k=4):
        original = HybridVend(k=k)
        original.build(graph)
        path = tmp_path / "index.vend"
        save_index(original, path)
        return original, path

    def test_interrupted_replace_keeps_old_index(self, tmp_path, graph,
                                                 monkeypatch):
        original, path = self._saved(tmp_path, graph)
        before = path.read_bytes()
        replacement = HybridVend(k=2)
        replacement.build(graph)

        def boom(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr("repro.core.persistence.os.replace", boom)
        with pytest.raises(OSError, match="before rename"):
            save_index(replacement, path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]  # no .tmp left behind
        restored = load_index(path)
        assert restored.k == original.k
        for u, v in list(all_pairs(graph))[:200]:
            assert restored.is_nonedge(u, v) == original.is_nonedge(u, v)

    def test_interrupted_fsync_keeps_old_index(self, tmp_path, graph,
                                               monkeypatch):
        original, path = self._saved(tmp_path, graph)
        before = path.read_bytes()

        def boom(fd):
            raise OSError("simulated crash during fsync")

        monkeypatch.setattr("repro.core.persistence.os.fsync", boom)
        with pytest.raises(OSError, match="during fsync"):
            save_index(original, path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_successful_save_leaves_no_temp(self, tmp_path, graph):
        _, path = self._saved(tmp_path, graph)
        assert list(tmp_path.iterdir()) == [path]
        assert path.stat().st_size > 0

    def test_header_checksum_detects_corruption(self, tmp_path, graph):
        _, path = self._saved(tmp_path, graph)
        data = bytearray(path.read_bytes())
        data[20] ^= 0xFF  # flip a bit inside the header fields
        path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="checksum"):
            load_index(path)

    def test_v1_header_still_loads(self, tmp_path, graph):
        from repro.core.persistence import _HEADER_CRC, _HEADER_PREFIX

        original, path = self._saved(tmp_path, graph)
        data = path.read_bytes()
        fields = list(_HEADER_PREFIX.unpack_from(data))
        fields[1] = 1  # rewrite the version field to v1
        v1_data = (_HEADER_PREFIX.pack(*fields)
                   + data[_HEADER_PREFIX.size + _HEADER_CRC.size:])
        v1_path = tmp_path / "legacy.vend"
        v1_path.write_bytes(v1_data)
        restored = load_index(v1_path)
        assert restored.k == original.k
        assert restored.num_codes == original.num_codes
        for u, v in list(all_pairs(graph))[:200]:
            assert restored.is_nonedge(u, v) == original.is_nonedge(u, v)

    def test_future_version_rejected(self, tmp_path, graph):
        from repro.core.persistence import _HEADER_PREFIX

        _, path = self._saved(tmp_path, graph)
        data = bytearray(path.read_bytes())
        fields = list(_HEADER_PREFIX.unpack_from(data))
        fields[1] = 99
        data[:_HEADER_PREFIX.size] = _HEADER_PREFIX.pack(*fields)
        path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="unsupported version"):
            load_index(path)
