"""The server API suite: correctness, coalescing, admission,
backpressure, health, and the malformed-input contract (DESIGN.md §15).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import pytest

from repro.apps import VendGraphDB
from repro.graph import Graph
from repro.server import ServerConfig, serve_in_thread
from repro.server.admission import AdmissionController, TokenBucket
from repro.server.schemas import ENDPOINTS, check_mutation_op, validate
from repro.storage.faults import FaultConfig, FaultInjectingKVStore

EDGES = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 6)]
NUM_VERTICES = 8


def build_graph() -> Graph:
    g = Graph()
    for v in range(NUM_VERTICES):
        g.add_vertex(v)
    for u, v in EDGES:
        g.add_edge(u, v)
    return g


def make_db(**kwargs) -> VendGraphDB:
    kwargs.setdefault("k", 4)
    db = VendGraphDB(**kwargs)
    db.load_graph(build_graph())
    return db


class Client:
    """Tiny synchronous test client over one keep-alive connection."""

    def __init__(self, handle, client_id: str = "test"):
        host, port = handle.address
        self.conn = http.client.HTTPConnection(host, port, timeout=30)
        self.client_id = client_id

    def request(self, method: str, path: str, body=None,
                raw: bytes | None = None):
        data = raw if raw is not None else (
            json.dumps(body).encode() if body is not None else None)
        self.conn.request(method, path, body=data,
                          headers={"X-Client-Id": self.client_id})
        response = self.conn.getresponse()
        payload = response.read()
        doc = None
        if payload and response.headers.get_content_type() == \
                "application/json":
            doc = json.loads(payload)
        return response.status, doc, response.headers

    def post(self, path: str, body):
        status, doc, _headers = self.request("POST", path, body)
        return status, doc

    def close(self):
        self.conn.close()


@pytest.fixture
def server():
    db = make_db(shards=2)
    handle = serve_in_thread(db, ServerConfig())
    client = Client(handle)
    yield handle, db, client
    client.close()
    handle.stop()
    db.close()


# -- probe correctness -------------------------------------------------------


class TestProbe:
    def test_verdicts_in_input_order(self, server):
        _handle, _db, client = server
        pairs = [[0, 1], [0, 3], [3, 2], [6, 1], [5, 0], [6, 0], [0, 1]]
        status, doc = client.post("/v1/edges:probe", {"pairs": pairs})
        assert status == 200
        expected = [(min(u, v), max(u, v)) in
                    {tuple(sorted(e)) for e in EDGES}
                    for u, v in pairs]
        assert doc["results"] == expected

    def test_unknown_vertices_answer_false_not_500(self, server):
        _handle, _db, client = server
        pairs = [[0, 1], [999, 1], [0, 998], [997, 996], [2, 3]]
        status, doc = client.post("/v1/edges:probe", {"pairs": pairs})
        assert status == 200
        assert doc["results"] == [True, False, False, False, True]

    def test_empty_pairs(self, server):
        _handle, _db, client = server
        status, doc = client.post("/v1/edges:probe", {"pairs": []})
        assert status == 200
        assert doc["results"] == []

    def test_verdicts_track_mutations(self, server):
        _handle, _db, client = server
        status, doc = client.post("/v1/mutations", {"ops": [
            {"op": "add_edge", "u": 3, "v": 6},
            {"op": "remove_edge", "u": 0, "v": 1},
        ]})
        assert status == 200
        assert [r["applied"] for r in doc["results"]] == [True, True]
        status, doc = client.post("/v1/edges:probe",
                                  {"pairs": [[3, 6], [0, 1]]})
        assert status == 200
        assert doc["results"] == [True, False]

    def test_vertex_lifecycle(self, server):
        _handle, _db, client = server
        ops = [{"op": "add_vertex", "v": 41},
               {"op": "add_vertex", "v": 41},
               {"op": "add_edge", "u": 41, "v": 0},
               {"op": "remove_vertex", "v": 41}]
        status, doc = client.post("/v1/mutations", {"ops": ops})
        assert status == 200
        assert [r["applied"] for r in doc["results"]] == [
            True, False, True, True]
        status, doc = client.post("/v1/edges:probe",
                                  {"pairs": [[41, 0]]})
        assert doc["results"] == [False]


class TestNeighbors:
    def test_known_vertex(self, server):
        _handle, _db, client = server
        status, doc = client.post("/v1/neighbors", {"vertex": 0})
        assert status == 200
        assert doc == {"vertex": 0, "exists": True,
                       "neighbors": [1, 2, 5]}

    def test_unknown_vertex(self, server):
        _handle, _db, client = server
        status, doc = client.post("/v1/neighbors", {"vertex": 12345})
        assert status == 200
        assert doc == {"vertex": 12345, "exists": False, "neighbors": []}


# -- coalescing and stats attribution ---------------------------------------


class TestCoalescing:
    def test_concurrent_probes_coalesce_and_stay_correct(self):
        """N concurrent clients; coalesced engine calls; every client
        still gets its own answers back in its own order."""
        db = make_db(shards=2)
        # A wide window guarantees concurrent arrivals share a batch.
        handle = serve_in_thread(db, ServerConfig(batch_window=0.05))
        from repro.obs import default_registry
        batches = default_registry().counter(
            "repro_server_coalesced_batches_total")
        pairs_counter = default_registry().counter(
            "repro_server_coalesced_pairs_total")
        batches_before = batches.total()
        pairs_before = pairs_counter.total()
        engine_before = db.query_stats.total

        edge_set = {tuple(sorted(e)) for e in EDGES}
        requests = [
            [[i % NUM_VERTICES, (i + j) % NUM_VERTICES]
             for j in range(1, 4)]
            for i in range(8)
        ]
        results: list = [None] * len(requests)

        def worker(idx: int) -> None:
            client = Client(handle, client_id=f"c{idx}")
            try:
                results[idx] = client.post("/v1/edges:probe",
                                           {"pairs": requests[idx]})
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(requests))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        try:
            total_pairs = 0
            for request, outcome in zip(requests, results):
                status, doc = outcome
                assert status == 200
                expected = [tuple(sorted((u, v))) in edge_set and u != v
                            for u, v in request]
                assert doc["results"] == expected
                total_pairs += len(request)
            batch_calls = batches.total() - batches_before
            assert 1 <= batch_calls < len(requests), (
                f"{len(requests)} concurrent requests produced "
                f"{batch_calls} engine batches — no coalescing happened")
            assert pairs_counter.total() - pairs_before == total_pairs
            # Attribution: coalesced traffic still lands in the engine
            # ledger, and the per-shard ledgers sum to it exactly.
            engine_delta = db.query_stats.total - engine_before
            assert engine_delta == total_pairs
            shard_sum = sum(s.total for s in db.shard_query_stats)
            assert shard_sum == db.query_stats.total
        finally:
            handle.stop()
            db.close()


# -- admission and backpressure ---------------------------------------------


class TestAdmission:
    def test_over_rate_client_gets_429_with_retry_after(self):
        db = make_db()
        handle = serve_in_thread(
            db, ServerConfig(rate=0.001, burst=3.0))
        hot = Client(handle, client_id="hot")
        fresh = Client(handle, client_id="fresh")
        try:
            statuses = []
            for _ in range(6):
                status, _doc, headers = hot.request(
                    "POST", "/v1/edges:probe", {"pairs": [[0, 1]]})
                statuses.append(status)
                if status == 429:
                    assert float(headers["Retry-After"]) > 0
            assert statuses[0] == 200
            assert 429 in statuses
            # Admission is per client: a fresh id has a fresh bucket.
            status, doc = fresh.post("/v1/edges:probe",
                                     {"pairs": [[0, 1]]})
            assert status == 200 and doc["results"] == [True]
        finally:
            hot.close()
            fresh.close()
            handle.stop()
            db.close()

    def test_batch_pairs_priced_like_single_probes(self):
        db = make_db()
        handle = serve_in_thread(db, ServerConfig(rate=0.001, burst=8.0))
        client = Client(handle, client_id="bulk")
        try:
            # 6 pairs fit the 8-token burst; the next 6 cannot.
            status, _doc = client.post("/v1/edges:probe",
                                       {"pairs": [[0, 1]] * 6})
            assert status == 200
            status, doc, headers = client.request(
                "POST", "/v1/edges:probe", {"pairs": [[0, 1]] * 6})
            assert status == 429
            assert doc["error"]["code"] == 429
            assert float(headers["Retry-After"]) > 0
        finally:
            client.close()
            handle.stop()
            db.close()

    def test_degraded_store_turns_writes_and_probes_away(self, server):
        _handle, db, client = server
        # The kv attribute is the latch the storage tier itself uses.
        db.store.segments[0]._kv.degraded = True
        try:
            status, doc, headers = client.request(
                "POST", "/v1/edges:probe", {"pairs": [[0, 1]]})
            assert status == 429
            assert "Retry-After" in headers
            assert "degraded" in doc["error"]["message"]
        finally:
            db.store.segments[0]._kv.degraded = False
        status, doc = client.post("/v1/edges:probe", {"pairs": [[0, 1]]})
        assert status == 200 and doc["results"] == [True]

    def test_queue_bound_rejects_overflow(self):
        import time

        db = make_db()
        handle = serve_in_thread(
            db, ServerConfig(max_queue_pairs=4, batch_window=0.5))
        first = Client(handle, client_id="a")
        second = Client(handle, client_id="b")
        try:
            # Fill the queue asynchronously: the wide window parks the
            # first request inside the batcher for 500ms.
            outcome = {}

            def fill():
                outcome["first"] = first.post(
                    "/v1/edges:probe", {"pairs": [[0, 1]] * 4})

            filler = threading.Thread(target=fill)
            filler.start()
            try:
                # healthz bypasses the queue: wait until the 4 pairs
                # are genuinely in flight before probing the bound.
                for _ in range(400):
                    _s, doc, _h = second.request("GET", "/healthz")
                    if doc["inflight_pairs"] >= 4:
                        break
                    time.sleep(0.002)
                else:
                    pytest.fail("first request never became in-flight")
                status, doc = second.post(
                    "/v1/edges:probe", {"pairs": [[1, 2]] * 3})
                assert status == 429, "queue bound never engaged"
                assert "queue full" in doc["error"]["message"]
            finally:
                filler.join(timeout=30)
            assert outcome["first"][0] == 200
        finally:
            first.close()
            second.close()
            handle.stop()
            db.close()


# -- health under chaos ------------------------------------------------------


class TestHealth:
    def test_healthz_ok(self, server):
        _handle, _db, client = server
        status, doc, _headers = client.request("GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["shards"] == 2

    def test_healthz_flips_during_chaos_and_heals(self):
        """Kill a replica primary mid-serve: reads fail over, the
        degraded latch trips, /healthz flips to 503; repair + reset
        brings 200 back.  The chaos sequence mirrors audit_chaos."""
        db = make_db(shards=2, replicas=1)
        handle = serve_in_thread(db, ServerConfig())
        client = Client(handle)
        try:
            status, doc, _h = client.request("GET", "/healthz")
            assert status == 200 and doc["replicas"] == 1

            shard = db.store.segments[0]
            primary = shard.copies[0]
            injector = FaultInjectingKVStore(
                primary._kv,
                FaultConfig(read_error_rate=1.0, max_retries=0, seed=7))
            primary._kv = injector

            # Drive storage reads through the API until failover trips
            # the latch (the NDF filters some pairs, so probe edges —
            # they always execute).
            for _ in range(10):
                status, _doc = client.post(
                    "/v1/edges:probe",
                    {"pairs": [list(e) for e in EDGES]})
                if db.degraded:
                    break
            assert db.degraded, "failover never latched degraded"

            status, doc, _h = client.request("GET", "/healthz")
            assert status == 503
            assert doc["status"] == "degraded"
            # Serving endpoints shed load while degraded.
            status, _doc, headers = client.request(
                "POST", "/v1/edges:probe", {"pairs": [[0, 1]]})
            assert status == 429 and "Retry-After" in headers

            # Heal: stop injecting, repair the replica set, reset.
            injector.config.read_error_rate = 0.0
            db.reset_degraded()
            status, doc, _h = client.request("GET", "/healthz")
            assert status == 200 and doc["status"] == "ok"
            status, doc = client.post("/v1/edges:probe",
                                      {"pairs": [[0, 1]]})
            assert status == 200 and doc["results"] == [True]
        finally:
            client.close()
            handle.stop()
            db.close()


# -- the malformed-input contract -------------------------------------------


MALFORMED = [
    ("POST", "/v1/edges:probe", b"not json at all"),
    ("POST", "/v1/edges:probe", b"\xff\xfe\xfd"),
    ("POST", "/v1/edges:probe", b""),
    ("POST", "/v1/edges:probe", b"[1, 2]"),
    ("POST", "/v1/edges:probe", b'{"pairs": {"u": 1}}'),
    ("POST", "/v1/edges:probe", b'{"pairs": [[1]]}'),
    ("POST", "/v1/edges:probe", b'{"pairs": [[1, 2, 3]]}'),
    ("POST", "/v1/edges:probe", b'{"pairs": [[-1, 2]]}'),
    ("POST", "/v1/edges:probe", b'{"pairs": [[1, true]]}'),
    ("POST", "/v1/edges:probe", b'{"pairs": [[1, 2]], "x": 1}'),
    ("POST", "/v1/neighbors", b"{}"),
    ("POST", "/v1/neighbors", b'{"vertex": []}'),
    ("POST", "/v1/neighbors", b'{"vertex": 9999999999999999999999}'),
    ("POST", "/v1/mutations", b'{"ops": []}'),
    ("POST", "/v1/mutations", b'{"ops": [{"op": "nope", "v": 1}]}'),
    ("POST", "/v1/mutations", b'{"ops": [{"op": "add_edge", "u": 1}]}'),
    ("POST", "/v1/mutations",
     b'{"ops": [{"op": "add_edge", "u": 2, "v": 2}]}'),
    ("POST", "/v1/mutations",
     b'{"ops": [{"op": "add_vertex", "u": 1, "v": 2}]}'),
]


class TestMalformedInput:
    @pytest.mark.parametrize("method,path,raw", MALFORMED)
    def test_structured_4xx_never_5xx(self, server, method, path, raw):
        _handle, _db, client = server
        status, doc, _headers = client.request(method, path, raw=raw)
        assert 400 <= status < 500, f"{raw!r} → HTTP {status}"
        assert "error" in doc and doc["error"]["code"] == status
        assert doc["error"]["details"] or doc["error"]["message"]

    def test_unknown_path_404(self, server):
        _handle, _db, client = server
        status, doc, _headers = client.request("POST", "/v2/everything",
                                               {"x": 1})
        assert status == 404 and doc["error"]["code"] == 404

    def test_wrong_method_405(self, server):
        _handle, _db, client = server
        status, doc, _headers = client.request("GET", "/v1/edges:probe")
        assert status == 405 and doc["error"]["code"] == 405

    def test_oversized_body_413(self, server):
        handle, _db, _client = server
        host, port = handle.address
        declared = ServerConfig().max_body + 1
        # The server answers 413 from the Content-Length alone — the
        # oversized body never needs to be transmitted (or buffered).
        with socket.create_connection((host, port), timeout=10) as s:
            s.sendall(b"POST /v1/edges:probe HTTP/1.1\r\n"
                      b"Content-Length: " + str(declared).encode() +
                      b"\r\n\r\n")
            reply = s.recv(4096)
        assert reply.startswith(b"HTTP/1.1 413")
        assert b'"code": 413' in reply or b'"code":413' in reply

    def test_garbage_framing_gets_400(self, server):
        handle, _db, _client = server
        host, port = handle.address
        for junk in (b"GET\r\n\r\n",
                     b"FETCH /v1/edges:probe HTTP/9.9\r\n\r\n",
                     b"POST /healthz HTTP/1.1\r\nbadheader\r\n\r\n",
                     b"POST /v1/neighbors HTTP/1.1\r\n"
                     b"Content-Length: banana\r\n\r\n"):
            with socket.create_connection((host, port), timeout=10) as s:
                s.sendall(junk)
                reply = s.recv(4096)
            assert reply.startswith(b"HTTP/1.1 4"), (junk, reply)

    def test_transfer_encoding_rejected_as_411(self, server):
        handle, _db, _client = server
        host, port = handle.address
        with socket.create_connection((host, port), timeout=10) as s:
            s.sendall(b"POST /v1/neighbors HTTP/1.1\r\n"
                      b"Transfer-Encoding: chunked\r\n\r\n")
            reply = s.recv(4096)
        assert reply.startswith(b"HTTP/1.1 411")


# -- /metrics through the server --------------------------------------------


class TestMetricsEndpoint:
    def test_scrape_and_exact_counter_delta(self, server):
        handle, _db, client = server
        scope = handle.server._scope  # this instance's series only

        def scrape() -> dict[str, str]:
            client.conn.request("GET", "/metrics")
            response = client.conn.getresponse()
            assert response.status == 200
            assert response.headers.get_content_type() == "text/plain"
            samples = {}
            for line in response.read().decode().splitlines():
                if line.startswith("#") or not line.strip():
                    continue
                name, _, value = line.rpartition(" ")
                samples[name] = value
            return samples

        before = scrape()
        probes = 5
        for _ in range(probes):
            status, _doc = client.post("/v1/edges:probe",
                                       {"pairs": [[0, 1], [0, 3]]})
            assert status == 200
        after = scrape()
        key = next(k for k in after
                   if k.startswith("repro_server_requests_total")
                   and 'endpoint="/v1/edges:probe"' in k
                   and 'code="200"' in k
                   and f'server="{scope}"' in k)
        assert int(after[key]) - int(before.get(key, "0")) == probes
        for name, value in after.items():
            assert "e+" not in value and "E+" not in value, (name, value)


# -- admission units ---------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=4.0, now=0.0)
        assert bucket.try_take(4.0, now=0.0) == 0.0
        retry = bucket.try_take(1.0, now=0.0)
        assert retry == pytest.approx(0.5)
        assert bucket.try_take(1.0, now=0.6) == 0.0

    def test_cost_above_burst_is_affordable_eventually(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        bucket.try_take(2.0, now=0.0)
        retry = bucket.try_take(10.0, now=0.0)
        assert retry == pytest.approx(2.0)  # capped at burst

    def test_controller_is_per_client_and_prunable(self):
        clock = {"now": 0.0}
        ctl = AdmissionController(rate=1.0, burst=1.0,
                                  clock=lambda: clock["now"])
        assert ctl.admit("a") == 0.0
        assert ctl.admit("a") > 0.0
        assert ctl.admit("b") == 0.0  # b's bucket is untouched by a
        clock["now"] = AdmissionController.IDLE_SECONDS + 1.0
        ctl._prune(clock["now"])
        assert len(ctl) == 0

    def test_disabled_controller_admits_everything(self):
        ctl = AdmissionController(rate=0.0, burst=1.0)
        assert not ctl.enabled
        assert all(ctl.admit("x") == 0.0 for _ in range(100))


# -- schema sanity -----------------------------------------------------------


class TestSchemas:
    def test_minimal_valid_documents_pass(self):
        from repro.server.schemas import (MUTATIONS_REQUEST,
                                          NEIGHBORS_REQUEST, PROBE_REQUEST)
        assert validate(PROBE_REQUEST, {"pairs": []}) == []
        assert validate(PROBE_REQUEST, {"pairs": [[0, 1]]}) == []
        assert validate(NEIGHBORS_REQUEST, {"vertex": 0}) == []
        assert validate(MUTATIONS_REQUEST, {"ops": [
            {"op": "add_vertex", "v": 3}]}) == []
        assert all(ENDPOINTS[key] is None or isinstance(ENDPOINTS[key],
                                                        dict)
                   for key in ENDPOINTS)

    def test_validate_pinpoints_the_field(self):
        from repro.server.schemas import PROBE_REQUEST
        errors = validate(PROBE_REQUEST, {"pairs": [[0, 1], [2, "x"]]})
        assert len(errors) == 1
        assert errors[0].startswith("$.pairs[1][1]: expected integer")

    def test_self_loop_is_cross_field_error(self):
        assert check_mutation_op({"op": "add_edge", "u": 3, "v": 3})
        assert not check_mutation_op({"op": "add_edge", "u": 3, "v": 4})
