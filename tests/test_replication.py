"""Tests for replica shards: failover, repair/reinstate, degraded reset."""

import pytest

from repro.graph import Graph
from repro.storage import (
    FaultConfig,
    FaultInjectingKVStore,
    GraphStore,
    ReplicatedShard,
    ShardedGraphStore,
)
from repro.storage.kvstore import InMemoryKVStore


def _replicated(replicas=1, primary_config=None, replica_configs=None):
    """A ReplicatedShard over in-memory copies, primary fault-wrapped."""
    injectors = []
    copies = []
    for i in range(replicas + 1):
        config = primary_config if i == 0 else (
            replica_configs[i - 1] if replica_configs else None)
        if config is not None:
            injector = FaultInjectingKVStore(InMemoryKVStore(), config)
            injectors.append(injector)
            copies.append(GraphStore(kv=injector))
        else:
            injectors.append(None)
            copies.append(GraphStore(kv=InMemoryKVStore()))
    return ReplicatedShard(copies, shard=0), injectors


class TestReplicatedShard:
    def test_writes_reach_every_copy(self):
        shard, _ = _replicated(replicas=2)
        shard.put_neighbors(1, [2, 3])
        shard.insert_half_edge(1, 5)
        for copy in shard.copies:
            assert copy.get_neighbors(1) == [2, 3, 5]

    def test_read_your_writes_after_failover(self):
        shard, injectors = _replicated(
            replicas=1, primary_config=FaultConfig(seed=1))
        shard.put_neighbors(7, [8])
        injectors[0].config.read_error_rate = 1.0
        shard.put_neighbors(7, [8, 9])       # write lands while dying
        assert shard.get_neighbors(7) == [8, 9]
        assert shard.active_copy != 0
        assert shard.replication_stats.failovers >= 1

    def test_proactive_failover_on_latched_degraded(self):
        shard, injectors = _replicated(
            replicas=1, primary_config=FaultConfig(seed=2))
        shard.put_neighbors(1, [2])
        injectors[0].degraded = True          # latched by earlier retries
        assert shard.get_neighbors(1) == [2]
        assert shard.active_copy == 1
        assert shard.replication_stats.failovers == 1

    def test_missing_vertex_is_not_a_fault(self):
        shard, _ = _replicated(replicas=1)
        with pytest.raises(KeyError):
            shard.get_neighbors(42)
        assert shard.active_copy == 0
        assert shard.replication_stats.failovers == 0

    def test_repair_resyncs_and_reinstates_primary(self):
        shard, injectors = _replicated(
            replicas=1, primary_config=FaultConfig(seed=3))
        shard.put_neighbors(1, [2])
        injectors[0].config.read_error_rate = 1.0
        shard.get_neighbors(1)                # fails over to the replica
        injectors[0].config.write_error_rate = 1.0
        shard.put_neighbors(1, [2, 4])        # primary misses this write
        injectors[0].config.read_error_rate = 0.0
        injectors[0].config.write_error_rate = 0.0
        shard.reset_degraded()
        assert shard.active_copy == 0
        assert not shard.degraded
        assert shard.replication_stats.reinstatements == 1
        # The reinstated primary caught up on the missed write.
        assert shard.primary.get_neighbors(1) == [2, 4]

    def test_stale_replica_is_never_served(self):
        """A copy that missed a write must not become the active copy:
        a replica may be behind, a serving copy never is."""
        shard, injectors = _replicated(
            replicas=1,
            primary_config=FaultConfig(seed=4),
            replica_configs=[FaultConfig(write_error_rate=1.0, seed=5)])
        shard.put_neighbors(1, [2])           # replica goes stale here
        injectors[0].config.read_error_rate = 1.0
        with pytest.raises(IOError):
            shard.get_neighbors(1)            # no fresh copy left
        assert shard.replication_stats.failed_writes >= 1

    def test_failovers_counter_exports_as_total(self):
        shard, _ = _replicated(replicas=1)
        exposition = shard.replication_stats.registry.to_prometheus()
        assert "repro_shard_failovers_total" in exposition


class TestShardedReplication:
    def test_replica_files_on_disk(self, tmp_path):
        store = ShardedGraphStore(tmp_path / "g.db", num_shards=2,
                                  replicas=1)
        store.bulk_load(Graph([(0, 1), (1, 2)]))
        store.close()
        for shard in range(2):
            assert (tmp_path / f"g.db.shard{shard}").exists()
            assert (tmp_path / f"g.db.shard{shard}.r0").exists()

    def test_store_survives_a_dead_primary(self):
        injectors = {}
        calls = [0]

        def factory(seg_path, shard):
            is_primary = calls[0] % 2 == 0
            calls[0] += 1
            inner = InMemoryKVStore()
            if not is_primary:
                return inner
            injectors[shard] = FaultInjectingKVStore(
                inner, FaultConfig(seed=shard))
            return injectors[shard]

        g = Graph([(i, (i + 1) % 24) for i in range(24)])
        store = ShardedGraphStore(num_shards=3, kv_factory=factory,
                                  replicas=1)
        store.bulk_load(g)
        injectors[0].config.read_error_rate = 1.0
        for v in g.vertices():
            assert store.get_neighbors(v) == g.sorted_neighbors(v)
        assert store.degraded
        injectors[0].config.read_error_rate = 0.0
        store.reset_degraded()
        assert not store.degraded
        for v in g.vertices():
            assert store.get_neighbors(v) == g.sorted_neighbors(v)


class TestResetDegradedPassthrough:
    """Satellite regression: the aggregate `degraded` used to be
    read-only — a recovered deployment could never clear it."""

    def _degraded_store(self, num_shards=2):
        injectors = {}

        def factory(seg_path, shard):
            injectors[shard] = FaultInjectingKVStore(
                InMemoryKVStore(),
                FaultConfig(read_error_rate=0.5, seed=shard))
            return injectors[shard]

        store = ShardedGraphStore(num_shards=num_shards, kv_factory=factory)
        store.bulk_load(Graph([(i, i + 1) for i in range(16)]))
        for v in range(16):
            try:
                store.get_neighbors(v)  # retries latch degraded
            except OSError:
                pass  # no replica here to absorb an exhausted retry
        assert store.degraded
        return store, injectors

    def test_sharded_store_reset(self):
        store, injectors = self._degraded_store()
        for injector in injectors.values():
            injector.config.read_error_rate = 0.0
        store.reset_degraded()
        assert not store.degraded
        assert not any(seg.degraded for seg in store.segments)

    def test_graphstore_reset_is_public(self):
        injector = FaultInjectingKVStore(
            InMemoryKVStore(), FaultConfig(read_error_rate=0.5, seed=9))
        seg = GraphStore(kv=injector)
        seg.put_neighbors(1, [2])
        for _ in range(8):
            seg.get_neighbors(1)
        assert seg.degraded
        injector.config.read_error_rate = 0.0
        seg.reset_degraded()
        assert not seg.degraded

    def test_database_facade_reset(self):
        from repro.apps import VendGraphDB
        from repro.graph import powerlaw_graph

        db = VendGraphDB(shards=2, replicas=1)
        g = powerlaw_graph(60, avg_degree=4, seed=1)
        db.load_graph(g)
        seg = db.store.segments[0]
        seg.copies[0]._kv = FaultInjectingKVStore(
            seg.copies[0]._kv, FaultConfig(seed=0))
        seg.copies[0]._kv.degraded = True
        assert db.degraded
        db.reset_degraded()
        assert not db.degraded
        db.close()

    def test_plain_graphstore_reset_is_a_noop(self):
        seg = GraphStore()
        seg.put_neighbors(1, [2])
        seg.reset_degraded()  # no injector underneath: must not raise
        assert not seg.degraded


class TestPublicFlush:
    """Satellite regression: flush must go through the public
    GraphStore API, not reach into `seg._kv`."""

    def test_sharded_flush_sync_is_durable(self, tmp_path):
        store = ShardedGraphStore(tmp_path / "g.db", num_shards=2)
        store.bulk_load(Graph([(0, 1)]))
        store.put_neighbors(9, [0])
        store.flush(sync=True)
        # A second handle replaying the logs sees the synced record.
        with ShardedGraphStore(tmp_path / "g.db", num_shards=2) as again:
            assert again.get_neighbors(9) == [0]
        store.close()

    def test_graphstore_flush_accepts_sync(self, tmp_path):
        with GraphStore(tmp_path / "p.db") as seg:
            seg.put_neighbors(1, [2, 3])
            seg.flush(sync=True)
            assert seg.get_neighbors(1) == [2, 3]


class TestProcessExecutorRejection:
    def test_process_engine_rejects_replicated_store(self, tmp_path):
        from repro.apps.edge_query import ParallelEdgeQueryEngine

        store = ShardedGraphStore(tmp_path / "g.db", num_shards=2,
                                  replicas=1)
        with pytest.raises(ValueError, match="replicated"):
            ParallelEdgeQueryEngine(store, None, executor="process")
        store.close()

    def test_database_rejects_process_with_replicas(self, tmp_path):
        from repro.apps import VendGraphDB

        with pytest.raises(ValueError, match="replicas"):
            VendGraphDB(tmp_path / "g.db", executor="process", replicas=1)
