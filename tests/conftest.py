"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.graph import Graph, erdos_renyi_graph, powerlaw_graph


@pytest.fixture(scope="session", autouse=True)
def _lock_order_witness_gate():
    """With ``REPRO_LOCK_WITNESS=1``, every lock order the suite
    actually exercises must stay consistent with the static R007
    graph — the dynamic half of the concurrency contract (CI runs the
    parallel/reshard suites under this gate; see DESIGN.md §14)."""
    from repro.devtools.witness import get_witness

    witness = get_witness()
    if not witness.enabled:
        yield
        return
    witness.reset()
    yield
    from repro.devtools.concurrency import static_lock_edges

    src = Path(__file__).parent.parent / "src" / "repro"
    cycle = witness.check(static_lock_edges([src]))
    assert cycle is None, (
        f"runtime lock order contradicts the static graph: "
        f"{' -> '.join(cycle)}")


def paper_example_graph() -> Graph:
    """The 8-vertex data graph of Fig. 2.

    Edges chosen so that peeling at k=3 leaves the core C_G^3 =
    {1, 2, 3, 4, 6, 7} shown in the red circle, with f^α(5) = {τ1, 3}
    and f^α(8) = {τ1, 3, 7}.
    """
    g = Graph()
    # Core adjacency reconstructed from Fig. 3's encodings: every core
    # vertex has degree 4 and the only NEpairs inside the core are
    # (1,7), (2,4), (3,6).
    core_edges = [
        (1, 2), (1, 3), (1, 4), (1, 6),
        (2, 3), (2, 6), (2, 7),
        (3, 4), (3, 7),
        (4, 6), (4, 7),
        (6, 7),
    ]
    for u, v in core_edges:
        g.add_edge(u, v)
    g.add_edge(5, 3)
    g.add_edge(8, 3)
    g.add_edge(8, 7)
    return g


@pytest.fixture
def fig2_graph() -> Graph:
    return paper_example_graph()


@pytest.fixture
def small_powerlaw() -> Graph:
    return powerlaw_graph(300, avg_degree=8.0, seed=7)


@pytest.fixture
def small_er() -> Graph:
    return erdos_renyi_graph(120, 600, seed=3)


def all_pairs(graph: Graph):
    """Every unordered vertex pair of the graph."""
    vertices = sorted(graph.vertices())
    return itertools.combinations(vertices, 2)


def assert_no_false_positives(solution, graph: Graph) -> int:
    """Check the VEND soundness contract over *all* pairs.

    ``is_nonedge`` may return True only for genuine NEpairs.  Returns
    the number of detected NEpairs so callers can assert usefulness.
    """
    detected = 0
    for u, v in all_pairs(graph):
        claim = solution.is_nonedge(u, v)
        if graph.has_edge(u, v):
            assert not claim, (
                f"false positive: ({u}, {v}) is an edge but "
                f"{type(solution).__name__} claims NEpair"
            )
        elif claim:
            detected += 1
    return detected
