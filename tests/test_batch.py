"""Batch-pipeline equivalence: every vectorized path ≡ its scalar twin.

The batched NDF (`is_nonedge_batch`), the batched storage reads
(`get_many`, `get_neighbors_many`, `has_edge_many`) and the batched
engine (`run_batch`) are pure execution-strategy changes — these tests
pin them to the scalar reference answers on random graphs, including
unknown vertices, self-pairs and both call forms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import EdgeQueryEngine
from repro.core import available_solutions, create_solution
from repro.graph import erdos_renyi_graph, powerlaw_graph
from repro.storage import GraphStore

ALL_SOLUTIONS = available_solutions()


def probe_pairs(graph, rng, count=400):
    """Pairs mixing known, unknown, negative-ID and self endpoints."""
    vertices = sorted(graph.vertices())
    max_id = vertices[-1]
    us = rng.choice(vertices, size=count).astype(np.int64)
    vs = rng.choice(vertices, size=count).astype(np.int64)
    unknown = rng.random(count) < 0.1
    vs[unknown] = max_id + 1 + rng.integers(0, 5, size=int(unknown.sum()))
    vs[rng.random(count) < 0.02] = -3
    selfs = rng.random(count) < 0.05
    vs[selfs] = us[selfs]
    return us, vs


class TestNdfEquivalence:
    @pytest.mark.parametrize("name", ALL_SOLUTIONS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_scalar(self, name, seed):
        graph = powerlaw_graph(150 + 40 * seed, avg_degree=7, seed=seed)
        solution = create_solution(name, k=4)
        solution.build(graph)
        rng = np.random.default_rng(100 + seed)
        us, vs = probe_pairs(graph, rng)
        scalar = [solution.is_nonedge(int(u), int(v)) for u, v in zip(us, vs)]
        batch = solution.is_nonedge_batch(us, vs)
        assert batch.dtype == bool
        assert batch.tolist() == scalar
        # Tuple-sequence call form answers identically.
        pairs = list(zip(us.tolist(), vs.tolist()))
        assert solution.is_nonedge_batch(pairs).tolist() == scalar

    @pytest.mark.parametrize("name", ALL_SOLUTIONS)
    def test_empty_batch(self, name):
        graph = erdos_renyi_graph(60, 200, seed=9)
        solution = create_solution(name, k=3)
        solution.build(graph)
        assert solution.is_nonedge_batch([]).tolist() == []

    def test_hybrid_maintenance_invalidates_snapshot(self):
        graph = erdos_renyi_graph(80, 300, seed=5)
        solution = create_solution("hybrid", k=4)
        solution.build(graph)
        vertices = sorted(graph.vertices())
        pairs = [(u, v) for u in vertices[:20] for v in vertices[:20] if u != v]
        solution.is_nonedge_batch(pairs)  # materialize the snapshot
        # Mutate through every maintenance entry point, then re-check.
        u, v = next((u, v) for u, v in pairs if not graph.has_edge(u, v)
                    and solution.is_nonedge(u, v))
        graph.add_edge(u, v)
        solution.insert_edge(u, v, graph.sorted_neighbors)
        scalar = [solution.is_nonedge(a, b) for a, b in pairs]
        assert solution.is_nonedge_batch(pairs).tolist() == scalar
        assert not solution.is_nonedge_batch([(u, v)])[0]
        graph.remove_edge(u, v)
        solution.delete_edge(u, v, graph.sorted_neighbors)
        scalar = [solution.is_nonedge(a, b) for a, b in pairs]
        assert solution.is_nonedge_batch(pairs).tolist() == scalar

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 6))
    def test_property_random_graphs(self, seed, k):
        graph = erdos_renyi_graph(70, 260, seed=seed)
        rng = np.random.default_rng(seed)
        us, vs = probe_pairs(graph, rng, count=150)
        for name in ("range", "bit-hash", "hyb+"):
            solution = create_solution(name, k=k)
            solution.build(graph)
            scalar = [solution.is_nonedge(int(u), int(v))
                      for u, v in zip(us, vs)]
            assert solution.is_nonedge_batch(us, vs).tolist() == scalar


class TestBatchStorage:
    def make_store(self, tmp_path, cache_bytes=0):
        graph = erdos_renyi_graph(50, 180, seed=21)
        store = GraphStore(tmp_path / "g.log", cache_bytes=cache_bytes)
        store.bulk_load(graph)
        return graph, store

    def test_get_many_dedups_and_sorts_reads(self, tmp_path):
        graph, store = self.make_store(tmp_path)
        kv = store._kv
        keys = [1, 2, 1, 2, 1]
        store.stats.reset()
        result = kv.get_many(keys)
        assert store.stats.disk_reads == 2  # one physical read per distinct key
        assert set(result) == {1, 2}
        assert result[1] is not None and result[2] is not None
        store.close()

    def test_get_many_missing_key_is_none(self, tmp_path):
        _, store = self.make_store(tmp_path)
        result = store._kv.get_many([1, 10**6])
        assert result[10**6] is None
        assert result[1] is not None
        store.close()

    def test_get_neighbors_many_matches_scalar(self, tmp_path):
        graph, store = self.make_store(tmp_path)
        vertices = sorted(graph.vertices())[:20]
        batch = store.get_neighbors_many(vertices)
        for v in vertices:
            assert batch[v].tolist() == store.get_neighbors(v)
        store.close()

    def test_get_neighbors_many_raises_on_missing(self, tmp_path):
        _, store = self.make_store(tmp_path)
        with pytest.raises(KeyError, match="not stored"):
            store.get_neighbors_many([1, 999_999])
        store.close()

    def test_has_edge_many_matches_scalar(self, tmp_path):
        graph, store = self.make_store(tmp_path)
        rng = np.random.default_rng(31)
        vertices = sorted(graph.vertices())
        us = rng.choice(vertices, size=300).astype(np.int64)
        vs = rng.choice(vertices, size=300).astype(np.int64)
        vs[rng.random(300) < 0.1] = max(vertices) + 7  # absent neighbor
        vs[rng.random(300) < 0.05] = -1                # out-of-range probe
        vs[rng.random(300) < 0.05] = 2**32 + 5         # beyond uint32
        scalar = [store.has_edge(int(u), int(v)) for u, v in zip(us, vs)]
        assert store.has_edge_many(us, vs).tolist() == scalar
        assert store.has_edge_many([], []).tolist() == []
        store.close()

    def test_has_edge_many_raises_on_unknown_source(self, tmp_path):
        _, store = self.make_store(tmp_path)
        with pytest.raises(KeyError):
            store.has_edge_many([999_999], [1])
        store.close()

    def test_get_many_second_pass_served_by_cache(self, tmp_path):
        graph, store = self.make_store(tmp_path, cache_bytes=1 << 20)
        vertices = sorted(graph.vertices())[:10]
        store._kv._cache.clear()  # bulk_load pre-warmed the cache
        store.stats.reset()
        store.get_neighbors_many(vertices)
        first = store.stats.snapshot()
        assert first["disk_reads"] == len(vertices)
        store.get_neighbors_many(vertices)
        second = store.stats.snapshot()
        assert second["disk_reads"] == first["disk_reads"]  # no new I/O
        assert second["cache_hits"] - first["cache_hits"] == len(vertices)
        store.close()


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", ["hybrid", "range", "partial"])
    def test_run_batch_matches_run(self, name):
        graph = powerlaw_graph(200, avg_degree=8, seed=41)
        store = GraphStore()
        store.bulk_load(graph)
        solution = create_solution(name, k=4)
        solution.build(graph)
        rng = np.random.default_rng(42)
        vertices = sorted(graph.vertices())
        pairs = [(int(u), int(v)) for u, v in
                 zip(rng.choice(vertices, 500), rng.choice(vertices, 500))]

        scalar = EdgeQueryEngine(store, solution)
        s = scalar.run(pairs)
        batch = EdgeQueryEngine(store, solution)
        b = batch.run_batch(pairs)

        # Dedup changes cache/disk_served; the logical totals must match.
        assert (b.total, b.filtered, b.executed, b.positives) == \
               (s.total, s.filtered, s.executed, s.positives)
        scalar2 = EdgeQueryEngine(store, solution)
        answers = [scalar2.has_edge(u, v) for u, v in pairs]
        assert EdgeQueryEngine(store, solution).has_edge_batch(
            pairs
        ).tolist() == answers

    def test_run_batch_without_filter(self):
        graph = erdos_renyi_graph(60, 200, seed=51)
        store = GraphStore()
        store.bulk_load(graph)
        pairs = [(u, v) for u in sorted(graph.vertices())[:15]
                 for v in sorted(graph.vertices())[:15] if u != v]
        engine = EdgeQueryEngine(store)
        stats = engine.run_batch(pairs)
        assert stats.filtered == 0
        assert stats.executed == stats.total == len(pairs)
        truth = sum(1 for u, v in pairs if graph.has_edge(u, v))
        assert stats.positives == truth

    def test_query_stats_reset_covers_new_fields(self):
        graph = erdos_renyi_graph(40, 120, seed=61)
        store = GraphStore()
        store.bulk_load(graph)
        engine = EdgeQueryEngine(store)
        engine.run_batch([(u, v) for u, v in graph.edges()][:10])
        assert engine.stats.executed > 0
        engine.stats.reset()
        snapshot = engine.stats
        assert (snapshot.total, snapshot.filtered, snapshot.executed,
                snapshot.positives, snapshot.cache_served,
                snapshot.disk_served) == (0, 0, 0, 0, 0, 0)
        assert snapshot.elapsed_seconds == 0.0
