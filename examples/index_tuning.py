"""Index tuning: choose k with the analysis toolbox.

Sweeps the dimension k on one graph and prints, per k: memory, the
peeled (exact) fraction, block-type mix, hash-slot saturation, and the
score broken down by pair class — the numbers that tell you *which*
part of the encoding limits detection.

Run:  python examples/index_tuning.py
"""

from repro import HybridVend
from repro.core import index_statistics, score_breakdown
from repro.graph import powerlaw_graph
from repro.workloads import common_neighbor_pairs


def main() -> None:
    graph = powerlaw_graph(5_000, avg_degree=18, seed=9)
    pairs = common_neighbor_pairs(graph, 30_000, seed=10)
    print(f"{graph}, average degree {graph.average_degree():.1f}, "
          "workload: 30k common-neighbor pairs\n")

    header = (f"{'k':>3}  {'KiB':>6}  {'peeled':>7}  {'slot occ':>8}  "
              f"{'dec-dec':>8}  {'mixed':>6}  {'core-core':>9}")
    print(header)
    print("-" * len(header))
    for k in (2, 4, 8, 16):
        vend = HybridVend(k=k)
        vend.build(graph)
        stats = index_statistics(vend)
        split = score_breakdown(vend, graph, pairs)
        print(f"{k:>3}  {stats.memory_bytes / 1024:>6.0f}  "
              f"{stats.decodable_fraction:>7.1%}  "
              f"{stats.mean_slot_occupancy:>8.1%}  "
              f"{split.decodable_decodable:>8.3f}  {split.mixed:>6.3f}  "
              f"{split.core_core:>9.3f}")

    print("\nReading the table: peeled pairs are decided exactly (the 1.000 "
          "columns); the core-core rate — limited by hash-slot saturation — "
          "is what more dimensions buy you.")


if __name__ == "__main__":
    main()
