"""Quickstart: build a VEND index and filter no-result edge queries.

Run:  python examples/quickstart.py
"""

from repro import HybPlusVend, HybridVend, vend_score
from repro.graph import powerlaw_graph
from repro.workloads import common_neighbor_pairs, random_pairs


def main() -> None:
    # A scale-free graph like the paper's web/social datasets.
    graph = powerlaw_graph(10_000, avg_degree=12, seed=0)
    print(f"graph: {graph}  (average degree "
          f"{graph.average_degree():.1f})")

    # k is the vector dimension: each vertex gets a k*32-bit in-memory
    # code.  Higher k -> higher detection rate, linearly more memory.
    for solution in (HybridVend(k=8), HybPlusVend(k=8)):
        solution.build(graph)
        print(f"\n{solution.name}: {solution.memory_bytes() / 1024:.0f} KiB "
              f"for {graph.num_vertices} vertices "
              f"(k*={solution.k_star}, I'={solution.id_bits} bits/ID)")

        # Definition 4's contract: is_nonedge(u, v) == True guarantees
        # there is no edge; False means "ask the database".
        u, v = 1, 2
        print(f"  is_nonedge({u}, {v}) = {solution.is_nonedge(u, v)} "
              f"(ground truth edge: {graph.has_edge(u, v)})")

        # VEND score (Definition 5) over the paper's two workloads.
        for label, pairs in (
            ("random pairs", random_pairs(graph, 50_000, seed=1)),
            ("common-neighbor pairs",
             common_neighbor_pairs(graph, 50_000, seed=2)),
        ):
            report = vend_score(solution, graph, pairs)
            print(f"  VEND score on {label:>22}: {report.score:.3f} "
                  f"({report.detected}/{report.nepairs} NEpairs detected, "
                  f"{report.false_positives} false positives)")


if __name__ == "__main__":
    main()
