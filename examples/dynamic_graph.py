"""Dynamic maintenance: keep the index sound under graph churn.

Simulates a live graph taking interleaved edge insertions and
deletions (Section V-D), verifies the no-false-positive contract after
every phase, and demonstrates recovering from ID-capacity exhaustion
by rebuilding (Section V-D3).

Run:  python examples/dynamic_graph.py
"""

import random

from repro import GraphNeighborFetch, HybridVend, IdCapacityError
from repro.graph import powerlaw_graph


def verify_soundness(vend, graph, rng, samples=20_000) -> int:
    """Sample pairs; count detections, assert zero false positives."""
    vertices = sorted(graph.vertices())
    detected = 0
    for _ in range(samples):
        u, v = rng.sample(vertices, 2)
        if vend.is_nonedge(u, v):
            assert not graph.has_edge(u, v), "false positive!"
            detected += 1
    return detected


def main() -> None:
    graph = powerlaw_graph(3_000, avg_degree=10, seed=5)
    vend = HybridVend(k=8)
    vend.build(graph)
    fetch = GraphNeighborFetch(graph)
    rng = random.Random(6)
    vertices = sorted(graph.vertices())

    print(f"initial: {graph}, {vend.memory_bytes() // 1024} KiB index")
    print(f"sound, detected {verify_soundness(vend, graph, rng)} NEpairs "
          "in 20k samples\n")

    # Phase 1: 5,000 random insertions.
    inserted = 0
    while inserted < 5_000:
        u, v = rng.sample(vertices, 2)
        if graph.add_edge(u, v):
            vend.insert_edge(u, v, fetch)
            inserted += 1
    print(f"after {inserted} insertions: {graph}")
    print(f"  fast appends: {vend.stats.inserts_fast}, "
          f"re-encodes: {vend.stats.inserts_rebuild}, "
          f"no-ops: {vend.stats.inserts_noop}, "
          f"storage fetches: {fetch.fetches}")
    verify_soundness(vend, graph, rng)
    print("  still sound\n")

    # Phase 2: 5,000 random deletions.
    edges = list(graph.edges())
    rng.shuffle(edges)
    for u, v in edges[:5_000]:
        graph.remove_edge(u, v)
        vend.delete_edge(u, v, fetch)
    print(f"after 5000 deletions: {graph}")
    print(f"  re-encodes: {vend.stats.deletes_rebuild}, "
          f"no-ops: {vend.stats.deletes_noop}")
    verify_soundness(vend, graph, rng)
    print("  still sound\n")

    # Phase 3: the universe outgrows I' -> rebuild (Section V-D3).
    giant_id = 1 << 20
    try:
        vend.insert_vertex(giant_id)
    except IdCapacityError as exc:
        print(f"capacity: {exc}")
        graph.add_vertex(giant_id)
        graph.add_edge(giant_id, vertices[0])
        vend.build(graph)  # amortized over graph-doubling in the paper
        print(f"rebuilt with I'={vend.id_bits} bits per ID; "
              f"is_nonedge({giant_id}, {vertices[1]}) = "
              f"{vend.is_nonedge(giant_id, vertices[1])}")


if __name__ == "__main__":
    main()
