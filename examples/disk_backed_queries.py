"""Disk-backed edge queries: the Fig. 1 architecture end to end.

Loads a graph into the file-backed adjacency store, then answers the
same query batch (a) hitting disk every time, (b) through a hybrid
VEND filter, and (c) through a standard Bloom filter — printing the
disk reads each one performed.

Run:  python examples/disk_backed_queries.py
"""

import tempfile
import time
from pathlib import Path

from repro import HybridVend
from repro.apps import EdgeQueryEngine
from repro.filters import StandardBloomFilter
from repro.graph import powerlaw_graph
from repro.storage import GraphStore
from repro.workloads import mixed_pairs


def main() -> None:
    graph = powerlaw_graph(5_000, avg_degree=16, seed=3)
    queries = mixed_pairs(graph, 30_000, local_fraction=0.5, seed=4)

    vend = HybridVend(k=8)
    vend.build(graph)
    bloom = StandardBloomFilter(k=8)
    bloom.build(graph)

    with tempfile.TemporaryDirectory() as tmp:
        store = GraphStore(Path(tmp) / "adjacency.log")
        store.bulk_load(graph)
        print(f"stored {store.num_vertices} adjacency lists "
              f"({store.stats.bytes_written / 1024:.0f} KiB on disk)\n")

        header = f"{'filter':>10}  {'time':>8}  {'disk reads':>10}  {'filtered':>9}"
        print(header)
        print("-" * len(header))
        for label, filt in (
            ("none", None),
            ("SBF", bloom),
            ("hybrid", vend),
        ):
            store.stats.reset()
            engine = EdgeQueryEngine(store, filt)
            start = time.perf_counter()
            for u, v in queries:
                engine.has_edge(u, v)
            elapsed = time.perf_counter() - start
            print(f"{label:>10}  {elapsed:7.2f}s  "
                  f"{store.stats.disk_reads:>10}  "
                  f"{engine.stats.filter_rate:>8.1%}")
        store.close()

    print("\nEvery filtered query is one avoided disk seek+read — the "
          "entire point of VEND (Fig. 1).")


if __name__ == "__main__":
    main()
