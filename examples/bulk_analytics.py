"""Bulk analytics through the end-to-end batched query pipeline.

An analytical job (here: estimating the graph's global "closure"
profile — how many distance-2 pairs are actually closed into
triangles) needs one edge determination per candidate pair.  The
batched :meth:`EdgeQueryEngine.run_batch` answers them end to end:
one vectorized NDF pass certifies most pairs as open in memory, the
survivors are grouped by endpoint and resolved against storage with a
single deduplicated multi-get — an order of magnitude cheaper per
query than the scalar path.

Run:  python examples/bulk_analytics.py
"""

import time

from repro import HybridVend
from repro.apps import EdgeQueryEngine
from repro.graph import rmat_graph
from repro.storage import GraphStore
from repro.workloads import common_neighbor_pairs


def main() -> None:
    # An R-MAT graph: the skewed-quadrant workload graph databases
    # benchmark against (Graph500 family).
    graph = rmat_graph(scale=13, num_edges=80_000, seed=11)
    print(f"graph: {graph} (avg degree {graph.average_degree():.1f})")

    store = GraphStore()  # in-memory adjacency store
    store.bulk_load(graph)
    vend = HybridVend(k=8)
    vend.build(graph)
    print(f"index: {vend.memory_bytes() // 1024} KiB in memory, "
          f"{store.num_vertices} adjacency lists in storage\n")

    pairs = common_neighbor_pairs(graph, 500_000, seed=12)

    vend.is_nonedge_batch(pairs[:1])  # materialize the columnar snapshot
    batch_engine = EdgeQueryEngine(store, vend)
    stats = batch_engine.run_batch(pairs)
    per_query = stats.elapsed_seconds / stats.total

    # Scalar reference on a sample, for the speedup figure.
    sample = pairs[:20_000]
    scalar_engine = EdgeQueryEngine(store, vend)
    start = time.perf_counter()
    scalar_answers = [scalar_engine.has_edge(u, v) for u, v in sample]
    scalar_per_query = (time.perf_counter() - start) / len(sample)

    check = EdgeQueryEngine(store, vend).has_edge_batch(sample)
    assert check.tolist() == scalar_answers

    print(f"{stats.total:,} distance-2 edge queries in "
          f"{stats.elapsed_seconds:.2f}s ({per_query * 1e6:.2f}us each; "
          f"scalar path: {scalar_per_query * 1e6:.2f}us each, "
          f"{scalar_per_query / per_query:.0f}x slower)")
    print(f"filter rate {stats.filter_rate:.1%}: {stats.filtered:,} pairs "
          "certified open by the NDF alone — each one an avoided storage "
          f"access; {stats.executed:,} undetermined pairs were resolved by "
          f"one grouped multi-get ({stats.disk_served:,} physical reads, "
          f"{stats.cache_served:,} block-cache hits).")
    closed = stats.positives / stats.total
    print(f"\nclosure estimate: {closed:.1%} of sampled distance-2 pairs "
          "are closed into triangles.")


if __name__ == "__main__":
    main()
