"""Bulk analytics: millions of determinations via the columnar NDF.

An analytical job (here: estimating the graph's global "closure"
profile — how many distance-2 pairs are actually closed into
triangles) needs one edge determination per candidate pair.  The
columnar snapshot answers them in numpy batches, an order of magnitude
cheaper per query than the scalar path.

Run:  python examples/bulk_analytics.py
"""

import time

import numpy as np

from repro import HybridVend
from repro.core import ColumnarIndex
from repro.graph import rmat_graph
from repro.workloads import common_neighbor_pairs


def main() -> None:
    # An R-MAT graph: the skewed-quadrant workload graph databases
    # benchmark against (Graph500 family).
    graph = rmat_graph(scale=13, num_edges=80_000, seed=11)
    print(f"graph: {graph} (avg degree {graph.average_degree():.1f})")

    vend = HybridVend(k=8)
    vend.build(graph)
    snapshot = ColumnarIndex(vend)
    print(f"index: {vend.memory_bytes() // 1024} KiB, columnar snapshot "
          f"{snapshot.memory_bytes() // 1024} KiB\n")

    pairs = np.asarray(
        common_neighbor_pairs(graph, 500_000, seed=12), dtype=np.int64
    )

    start = time.perf_counter()
    certainly_open = snapshot.query_batch(pairs[:, 0], pairs[:, 1])
    batch_time = time.perf_counter() - start

    start = time.perf_counter()
    sample = pairs[:20_000]
    scalar = [vend.is_nonedge(int(u), int(v)) for u, v in sample]
    scalar_time = (time.perf_counter() - start) / len(sample)

    assert scalar == certainly_open[:20_000].tolist()
    per_query = batch_time / len(pairs)
    print(f"{len(pairs):,} distance-2 determinations in {batch_time:.2f}s "
          f"({per_query * 1e6:.2f}us each; scalar path: "
          f"{scalar_time * 1e6:.2f}us each, "
          f"{scalar_time / per_query:.0f}x slower)")

    open_rate = certainly_open.mean()
    print(f"\n{open_rate:.1%} of sampled distance-2 pairs are *certainly* "
          "open (no closing edge) — each one an avoided disk access; the "
          f"remaining {1 - open_rate:.1%} would be checked against storage.")


if __name__ == "__main__":
    main()
