"""Triangle counting on disk, accelerated by VEND (Algorithms 1 & 2).

Counts triangles of a power-law graph stored on disk with both
external-memory frameworks from the paper, with and without a hyb+
filter, and reports the saved I/O.

Run:  python examples/triangle_counting.py
"""

import tempfile
from pathlib import Path

from repro import HybPlusVend
from repro.apps import edge_iterator_count, trigon_count
from repro.graph import powerlaw_graph
from repro.storage import GraphStore


def main() -> None:
    graph = powerlaw_graph(4_000, avg_degree=14, seed=7)
    vend = HybPlusVend(k=8)
    vend.build(graph)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        store = GraphStore(tmp / "adjacency.log")
        store.bulk_load(graph)

        print("Algorithm 1 — edge-iterator (adjacency lists on disk)")
        plain = edge_iterator_count(store)
        fast = edge_iterator_count(store, vend)
        assert plain.triangles == fast.triangles
        print(f"  triangles: {plain.triangles}")
        print(f"  disk reads: {plain.disk_reads} -> {fast.disk_reads} "
              f"({fast.skipped_fetches} adjacency fetches skipped by "
              f"{fast.vend_tests} in-memory NE-tests)\n")

        print("Algorithm 2 — Trigon-style partitioned counting")
        plain2 = trigon_count(store, tmp / "w0", memory_budget_edges=4_000)
        fast2 = trigon_count(store, tmp / "w1", memory_budget_edges=4_000,
                             vend=vend)
        assert plain2.triangles == fast2.triangles == plain.triangles
        print(f"  partitions: {plain2.extra['partitions']}")
        print(f"  companion file: {plain2.companion_bytes} B -> "
              f"{fast2.companion_bytes} B "
              f"({fast2.filtered_triples} triples discarded by VEND)")
        store.close()


if __name__ == "__main__":
    main()
