"""Ablation — scalar vs columnar (batch) NDF evaluation.

The columnar snapshot evaluates whole pair batches with numpy array
operations — the query-level analogue of the paper's data-parallel
theme.  Shape: identical answers, several-fold lower per-query cost.
"""

import numpy as np

from repro.bench import (
    Table,
    bench_pairs,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.core import ColumnarIndex
from repro.workloads import random_pairs

K = 8
DATASET = "as-sk"


def test_batch_ndf_ablation(once):
    table = Table(
        f"Ablation — scalar vs columnar NDF ({DATASET}, k={K})",
        ["Path", "Time", "per query", "Memory (KiB)"],
    )
    outcome = {}

    def run():
        graph = load_dataset(DATASET)
        solution = make_solution("hybrid", K, graph,
                                 id_bits=paper_id_bits(DATASET))
        pairs = random_pairs(graph, bench_pairs(), seed=90)
        array = np.asarray(pairs, dtype=np.int64)

        scalar, scalar_time = timed(
            lambda: [solution.is_nonedge(u, v) for u, v in pairs]
        )
        snapshot = ColumnarIndex(solution)
        batch, batch_time = timed(
            lambda: snapshot.query_batch(array[:, 0], array[:, 1])
        )
        assert batch.tolist() == scalar, "batch must equal scalar answers"
        outcome["scalar"] = (scalar_time, solution.memory_bytes())
        outcome["columnar"] = (batch_time, snapshot.memory_bytes())
        outcome["count"] = len(pairs)
        return outcome

    once(run)
    count = outcome["count"]
    for label in ("scalar", "columnar"):
        elapsed, memory = outcome[label]
        table.add_row(label, f"{elapsed * 1e3:.0f}ms",
                      f"{elapsed / count * 1e6:.2f}us",
                      f"{memory / 1024:.0f}")
    table.add_note(f"{count} determinations; scale={bench_scale()}")
    table.add_note("shape: identical answers; batch path several-fold "
                   "cheaper per query (trading snapshot memory)")
    table.emit(results_dir() / "ablation_batch.txt")

    scalar_time, _ = outcome["scalar"]
    batch_time, _ = outcome["columnar"]
    assert batch_time < scalar_time / 2, (
        f"expected a clear batch win: {batch_time:.3f}s vs {scalar_time:.3f}s"
    )
