"""Ablation — block-selection strategy for the hybrid encoding.

Compares, at equal memory:
- ``first``  — always the leftmost block (basic-range idea, Fig. 3 left);
- ``shortlist`` — the default coverage-shortlist NT maximization;
- ``exhaustive`` — the paper's exact sliding-window selection.

Shape: NT-maximizing selection beats the naive leftmost choice, and
the shortlist tracks the exhaustive optimum closely at a fraction of
the build time.
"""

from repro.bench import (
    Table,
    bench_pairs,
    bench_scale,
    load_dataset,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.core import HybridVend, vend_score
from repro.core.blocks import BLOCK_LEFT, BlockChoice
from repro.workloads import common_neighbor_pairs

K = 8
DATASET = "wiki"


class LeftmostHybrid(HybridVend):
    """Naive variant: always the leftmost feasible max-size block."""

    name = "hybrid-leftmost"

    def _select_block(self, neighbors):
        size = min(self.k_star, len(neighbors) - 1)
        while size > 0 and self._slot_bits(size) < 1:
            size -= 1
        return BlockChoice(BLOCK_LEFT, 0, size, 0)


def build_variant(graph, id_bits, budget):
    if budget == "leftmost":
        vend = LeftmostHybrid(k=K, id_bits=id_bits)
    else:
        vend = HybridVend(k=K, id_bits=id_bits, selection_budget=budget)
    vend.build(graph)
    return vend


def test_block_selection_ablation(once):
    table = Table(
        f"Ablation — block selection strategy ({DATASET}, k={K})",
        ["Strategy", "Score (CommPair)", "Build time"],
    )
    rows = {}

    def run():
        graph = load_dataset(DATASET)
        id_bits = paper_id_bits(DATASET)
        pairs = common_neighbor_pairs(graph, bench_pairs(), seed=31)
        for label, budget in (
            ("leftmost", "leftmost"),
            ("shortlist", 8),
            ("exhaustive", None),
        ):
            vend, build_time = timed(
                lambda b=budget: build_variant(graph, id_bits, b)
            )
            report = vend_score(vend, graph, pairs)
            assert report.false_positives == 0
            rows[label] = (report.score, build_time)
            table.add_row(label, f"{report.score:.4f}", f"{build_time:.2f}s")
        return rows

    once(run)
    table.add_note(f"scale={bench_scale()}")
    table.add_note("'leftmost' always takes the first max-size block; "
                   "'exhaustive' is the paper's sliding-window scan")
    table.emit(results_dir() / "ablation_blocks.txt")

    naive_score, _ = rows["leftmost"]
    short_score, short_time = rows["shortlist"]
    exact_score, exact_time = rows["exhaustive"]
    # NT maximization helps, and the shortlist is a faithful, faster
    # stand-in for the exhaustive optimum.
    assert short_score > naive_score
    assert exact_score > naive_score
    assert short_score >= exact_score - 0.02
    assert short_time <= exact_time
