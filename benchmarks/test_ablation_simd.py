"""Ablation — SS-tree scalar width and Stream VByte decode paths.

Two micro-studies on the hyb+ machinery:

1. NE-test latency of hyb+ codes across scalar widths s ∈ {2, 4, 8}
   (deeper trees vs wider nodes) against the hybrid's sequential-scan
   membership — the paper's tree-search-vs-scan claim.
2. Stream VByte decoding: the SIMD (shuffle-LUT) group decoder vs the
   scalar reference decoder, with and without delta coding.
"""

import random

from repro.bench import (
    Table,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.simd import decode, encode
from repro.workloads import random_pairs

K = 8
DATASET = "uk"
PROBES = 20000


def query_time(solution, pairs):
    _, elapsed = timed(
        lambda: [solution.is_nonedge(u, v) for u, v in pairs]
    )
    return elapsed


def test_scalar_width_ablation(once):
    table = Table(
        f"Ablation — NE-test time vs scalar width ({DATASET}, k={K})",
        ["Variant", "Time", "per query"],
    )
    rows = {}

    def run():
        graph = load_dataset(DATASET)
        id_bits = paper_id_bits(DATASET)
        pairs = random_pairs(graph, PROBES, seed=41)
        hybrid = make_solution("hybrid", K, graph, id_bits=id_bits)
        rows["hybrid-scan"] = query_time(hybrid, pairs)
        for scalar in (2, 4, 8):
            from repro.core import HybPlusVend

            plus = HybPlusVend(k=K, id_bits=id_bits, scalar=scalar)
            plus.build(graph)
            rows[f"hyb+ s={scalar}"] = query_time(plus, pairs)
        for label, elapsed in rows.items():
            table.add_row(label, f"{elapsed:.2f}s",
                          f"{elapsed / PROBES * 1e6:.1f}us")
        return rows

    once(run)
    table.add_note(f"{PROBES} NE-tests; scale={bench_scale()}")
    table.add_note("paper shape: tree search replaces the sequential scan; "
                   "absolute Python timings are not the paper's ns-scale")
    table.emit(results_dir() / "ablation_simd_scalar.txt")

    assert all(elapsed > 0 for elapsed in rows.values())


def test_streamvbyte_decode_ablation(once):
    table = Table(
        "Ablation — Stream VByte decode paths",
        ["Codec", "Decode time", "Encoded bytes"],
    )
    rows = {}

    def run():
        rng = random.Random(7)
        values = sorted(rng.sample(range(1, 40_000_000), 4000))
        for label, delta, simd in (
            ("scalar", False, False),
            ("scalar+delta", True, False),
            ("simd", False, True),
            ("simd+delta", True, True),
        ):
            controls, data = encode(values, delta=delta)
            decoded, elapsed = timed(
                lambda c=controls, d=data, dl=delta, s=simd: decode(
                    c, d, len(values), delta=dl, simd=s
                )
            )
            assert decoded == values
            rows[label] = (elapsed, len(controls) + len(data))
            table.add_row(label, f"{elapsed * 1e3:.1f}ms",
                          len(controls) + len(data))
        return rows

    once(run)
    table.add_note("delta coding shrinks the payload (the paper's Fig. 6 "
                   "point); plain uint32 storage would take 16000 bytes")
    table.emit(results_dir() / "ablation_simd_codec.txt")

    # Delta coding must compress better than raw vbyte.
    assert rows["simd+delta"][1] < rows["simd"][1]
    assert rows["simd+delta"][1] < 4000 * 4
