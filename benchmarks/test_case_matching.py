"""Case study (Appendix B style) — Graphflow-like subgraph matching.

Triangle and 4-clique patterns matched against the disk-backed store
with and without VEND verification filtering.  Shape: identical
embedding counts, with a large share of verification edge queries
answered in memory.
"""

from repro.apps import SubgraphMatcher, clique_pattern, triangle_pattern
from repro.bench import (
    Table,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
)
from repro.storage import GraphStore

K = 8
DATASET = "as-sk"


def test_subgraph_matching_acceleration(once, tmp_path):
    table = Table(
        f"Case study — subgraph matching with/without VEND (k={K})",
        ["Pattern", "Embeddings", "Plain disk reads", "VEND disk reads",
         "Filtered queries"],
    )
    measured = {}

    def run():
        # 4-clique enumeration is cubic in hub degrees: keep this case
        # study on a small instance so it finishes in tens of seconds.
        graph = load_dataset(DATASET, scale=0.1 * bench_scale())
        vend = make_solution("hyb+", K, graph,
                             id_bits=paper_id_bits(DATASET))
        store = GraphStore(tmp_path / "match.log")
        store.bulk_load(graph)
        for label, pattern in (
            ("triangle", triangle_pattern()),
            ("4-clique", clique_pattern(4)),
        ):
            plain = SubgraphMatcher(store, None).count(pattern)
            fast = SubgraphMatcher(store, vend).count(pattern)
            measured[label] = (plain, fast)
            table.add_row(
                label, plain.embeddings, plain.disk_reads,
                fast.disk_reads, fast.filtered_queries,
            )
        store.close()
        return measured

    once(run)
    table.add_note("shape: identical counts; VEND answers most "
                   "verification queries in memory")
    table.emit(results_dir() / "case_matching.txt")

    for label, (plain, fast) in measured.items():
        assert plain.embeddings == fast.embeddings, label
        assert fast.disk_reads <= plain.disk_reads, label
        if plain.edge_queries:
            assert fast.filtered_queries > 0, label
