"""Fig. 7 — VEND score on randomly generated vertex pairs.

Paper shape: on random pairs every reasonable method scores high and
the gaps are small; hybrid/hyb+/SBF sit at the top, and hyb+ >= hybrid.
"""

from sweep_utils import score_chart, score_sweep

from repro.bench import results_dir


def test_fig7_vend_score_random_pairs(once):
    table, scores = once(
        score_sweep, "random", "Fig. 7 — VEND score, random pairs"
    )
    table.add_note("paper shape: small gaps; hybrid/hyb+/SBF ~equal highest")
    table.emit(results_dir() / "fig7_score_random.txt")
    score_chart("Fig. 7 — VEND score, random pairs (k=8 slice)",
                scores).save(results_dir() / "fig7_score_random_chart.txt")

    for dataset, per_k in scores.items():
        for k, row in per_k.items():
            where = f"{dataset} k={k}"
            # Our methods are at (or essentially at) the top.
            top = max(row.values())
            assert row["hyb+"] >= top - 0.05, f"{where}: hyb+ not near top"
            assert row["hybrid"] >= top - 0.06, f"{where}: hybrid not near top"
            # hyb+ compression never loses to hybrid by more than noise.
            assert row["hyb+"] >= row["hybrid"] - 0.01, where
            # Random pairs are easy: the strong methods all score high.
            assert row["hybrid"] > 0.85, f"{where}: hybrid score too low"
            assert row["SBF"] > 0.5, f"{where}: SBF unexpectedly poor"
