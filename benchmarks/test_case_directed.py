"""Case study (Appendix E.3 style) — VEND over a directed graph.

A Pokec-like directed power-law analogue is filtered through
:class:`~repro.core.directed.DirectedVend` (hybrid base).  Shape: no
false positives against directed ground truth, high detection on
random ordered pairs.
"""

import random

from repro.bench import Table, bench_scale, results_dir
from repro.core import HybridVend
from repro.core.directed import DirectedVend
from repro.graph import DiGraph, powerlaw_graph

K = 8


def pokec_like(scale: float, seed: int = 21) -> DiGraph:
    """Directed analogue: orient each undirected power-law edge
    randomly, occasionally in both directions (social reciprocity)."""
    base = powerlaw_graph(max(500, round(4000 * scale)),
                          avg_degree=27, seed=seed)
    rng = random.Random(seed)
    digraph = DiGraph()
    for v in base.vertices():
        digraph.add_vertex(v)
    for u, v in base.edges():
        if rng.random() < 0.3:
            digraph.add_edge(u, v)
            digraph.add_edge(v, u)
        elif rng.random() < 0.5:
            digraph.add_edge(u, v)
        else:
            digraph.add_edge(v, u)
    return digraph


def test_directed_vend_case_study(once):
    table = Table(
        f"Case study — directed VEND (hybrid base, k={K})",
        ["Pairs", "NEpairs", "Detected", "Score", "False positives"],
    )
    outcome = {}

    def run():
        digraph = pokec_like(bench_scale())
        vend = DirectedVend(HybridVend(k=K))
        vend.build(digraph)
        rng = random.Random(3)
        vertices = sorted(digraph.vertices())
        nepairs = detected = false_positives = 0
        total = 20000
        for _ in range(total):
            u, v = rng.sample(vertices, 2)
            claim = vend.is_nonedge(u, v)
            if digraph.has_edge(u, v):
                if claim:
                    false_positives += 1
            else:
                nepairs += 1
                if claim:
                    detected += 1
        outcome.update(
            total=total, nepairs=nepairs, detected=detected,
            false_positives=false_positives,
        )
        return outcome

    once(run)
    score = outcome["detected"] / outcome["nepairs"]
    table.add_row(outcome["total"], outcome["nepairs"],
                  outcome["detected"], f"{score:.3f}",
                  outcome["false_positives"])
    table.add_note("shape: zero false positives on directed queries; "
                   "high detection on random ordered pairs")
    table.emit(results_dir() / "case_directed.txt")

    assert outcome["false_positives"] == 0
    assert score > 0.9
