"""Sharded parallel batch queries vs the PR 1 serial read path.

The ISSUE 5 acceptance bar: the 4-shard / 4-worker
:class:`ParallelEdgeQueryEngine` must answer the seeded 100k-pair
workload at >= 2x the throughput of the PR 1 batch pipeline, with
bitwise-identical verdicts.  The PR 1 baseline is reconstructed
faithfully below — one ``pread`` per record in offset order, no span
coalescing, no packed numpy assembly, no checksums (PR 2 added those)
— and installed onto a real disk store, so the comparison isolates
exactly the read-path and shard-layer work this PR adds.

Workload: one probe per distinct vertex of a 100k-vertex powerlaw
graph, each against its first sorted neighbor.  Every probe is a true
edge, so the NDF filters nothing and every pair pays a storage read —
the disk-bound regime the shard layer exists for.  Hub-skewed pair
sampling would collapse to ~33k distinct left endpoints and understate
the multi-get volume; one-probe-per-vertex keeps all ~100k adjacency
lists in play.

Emits the shard/worker sweep (throughput, p50/p99 batch latency) to
``benchmarks/results/throughput_sharded.json`` and, via the
``bench_report`` fixture, to ``BENCH_PR5.json`` at the repo root.
"""

import json
import os
import time

import numpy as np

from repro.apps import EdgeQueryEngine, ParallelEdgeQueryEngine
from repro.bench import make_solution, results_dir
from repro.graph import powerlaw_graph
from repro.storage import GraphStore, ShardedGraphStore

N_VERTICES = 100_000
AVG_DEGREE = 8
K = 6
METHOD = "hyb+"
ROUNDS = 7
MIN_SPEEDUP = 2.0
SWEEP = [(1, 1), (2, 1), (2, 4), (4, 1), (4, 4)]


def _one_probe_per_vertex(graph):
    """``(v, first sorted neighbor of v)`` for every non-isolated v."""
    edges = np.asarray(sorted(graph.edges()), dtype=np.int64)
    both = np.concatenate([edges, edges[:, [1, 0]]])
    both = both[np.lexsort((both[:, 1], both[:, 0]))]
    firsts = both[np.unique(both[:, 0], return_index=True)[1]]
    return firsts[:, 0].copy(), firsts[:, 1].copy()


def _install_pr1_read_path(store):
    """Regress a disk store's multi-get to the PR 1 implementation.

    PR 1's ``get_many`` walked the offset-sorted pending list issuing
    one ``pread`` per record — no coalesced spans, no packed buffer,
    no checksum validation (checksums arrived in PR 2).  Stats booking
    matches the modern path (one logical disk read per distinct stored
    key) so engine counters stay comparable.
    """
    kv = store._kv

    def pr1_get_many(keys, receipt=None):
        result = {}
        pending = []
        for key in keys:
            key = int(key)
            if key in result:
                continue
            loc = kv._index.get(key)
            if loc is None:
                result[key] = None
                continue
            result[key] = None
            pending.append((loc[0], loc[1], key))
        pending.sort()
        if kv._pending_flush and pending:
            kv._file.flush()
            kv._pending_flush = False
        disk_reads = bytes_read = 0
        for offset, size, key in pending:
            value = os.pread(kv._read_fd, size, offset)
            disk_reads += 1
            bytes_read += len(value)
            result[key] = value
        if disk_reads:
            kv.stats.inc("disk_reads", disk_reads)
            kv.stats.inc("bytes_read", bytes_read)
            if receipt is not None:
                receipt.count_disk_reads(disk_reads, bytes_read)
        return result

    kv.get_many = pr1_get_many
    kv.get_many_packed = None  # force the dict fallback in probe_edges
    return store


def _timed_rounds(run_batch):
    """Best-of / percentile batch latencies over ``ROUNDS`` warm runs."""
    run_batch()  # warm: page cache + first-touch checksum arming
    laps = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_batch()
        laps.append(time.perf_counter() - start)
    laps = np.asarray(laps, dtype=np.float64)
    return {
        "best_seconds": round(float(laps.min()), 4),
        "p50_seconds": round(float(np.percentile(laps, 50)), 4),
        "p99_seconds": round(float(np.percentile(laps, 99)), 4),
    }


def test_sharded_parallel_speedup(tmp_path, bench_report):
    graph = powerlaw_graph(N_VERTICES, avg_degree=AVG_DEGREE, seed=1)
    solution = make_solution(METHOD, K, graph)
    us, vs = _one_probe_per_vertex(graph)
    num_pairs = len(us)
    solution.is_nonedge_batch([(int(us[0]), int(vs[0]))])  # warm snapshot

    # PR 1 baseline: serial engine over the regressed read path.
    pr1_store = GraphStore(tmp_path / "pr1.db", cache_bytes=0)
    pr1_store.bulk_load(graph)
    _install_pr1_read_path(pr1_store)
    pr1 = EdgeQueryEngine(pr1_store, nonedge_filter=solution)
    want = pr1.has_edge_batch(us, vs)
    assert want.all()  # every probe is a real edge: nothing filtered
    pr1_timing = _timed_rounds(lambda: pr1.has_edge_batch(us, vs))
    pr1_ops = num_pairs / pr1_timing["best_seconds"]

    # Current serial engine (coalesced + packed read path, 1 store).
    serial_store = GraphStore(tmp_path / "serial.db", cache_bytes=0)
    serial_store.bulk_load(graph)
    serial = EdgeQueryEngine(serial_store, nonedge_filter=solution)
    assert (serial.has_edge_batch(us, vs) == want).all()
    serial_timing = _timed_rounds(lambda: serial.has_edge_batch(us, vs))
    serial_ops = num_pairs / serial_timing["best_seconds"]

    # Shard/worker sweep over the parallel engine.
    sweep = []
    for shards, workers in SWEEP:
        store = ShardedGraphStore(tmp_path / f"s{shards}.db",
                                  num_shards=shards, cache_bytes=0)
        if not store.num_vertices:
            store.bulk_load(graph)
        with ParallelEdgeQueryEngine(store, nonedge_filter=solution,
                                     workers=workers) as engine:
            assert (engine.has_edge_batch(us, vs) == want).all()
            timing = _timed_rounds(lambda: engine.has_edge_batch(us, vs))
        ops = num_pairs / timing["best_seconds"]
        sweep.append({"shards": shards, "workers": workers,
                      "ops_per_sec": round(ops),
                      "speedup_vs_pr1": round(ops / pr1_ops, 2),
                      **timing})

    headline = next(row for row in sweep
                    if row["shards"] == 4 and row["workers"] == 4)
    payload = {
        "workload": {"pairs": num_pairs, "kind": "one-probe-per-vertex",
                     "graph": f"powerlaw(n={N_VERTICES}, "
                              f"avg_degree={AVG_DEGREE}, seed=1)",
                     "solution": f"{METHOD}(k={K})",
                     "store": "disk, cache_bytes=0", "rounds": ROUNDS},
        "pr1_serial_baseline": {"ops_per_sec": round(pr1_ops),
                                **pr1_timing},
        "serial_current": {"ops_per_sec": round(serial_ops),
                           "speedup_vs_pr1": round(serial_ops / pr1_ops, 2),
                           **serial_timing},
        "sweep": sweep,
        "headline_speedup_vs_pr1": headline["speedup_vs_pr1"],
    }
    out = results_dir() / "throughput_sharded.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    bench_report("sharded_parallel", payload, report="BENCH_PR5.json")
    print(f"\npr1 {pr1_ops:,.0f} ops/s, serial {serial_ops:,.0f} ops/s, "
          f"4x4 {headline['ops_per_sec']:,.0f} ops/s "
          f"({headline['speedup_vs_pr1']:.2f}x) -> {out}")

    assert headline["speedup_vs_pr1"] >= MIN_SPEEDUP, (
        f"4-shard/4-worker engine only {headline['speedup_vs_pr1']:.2f}x "
        f"the PR 1 batch path (need {MIN_SPEEDUP}x)"
    )
