"""Fig. 10 — maintenance throughput for edge insertions and deletions (k=8).

The paper samples existing edges for deletion and random new pairs for
insertion, evaluating groups independently and reporting updates/sec
(vector-update time only; storage commit excluded).

Paper shape: Bloom filters insert faster than hybrid (pure hashing vs
occasional re-encoding), but SBF/BBF deletion throughput collapses
(global / full-scan reconstruction) while LBF and hybrid/hyb+ stay
usable; for our methods insertion throughput exceeds deletion.
"""

import time

from repro.bench import (
    BarChart,
    Table,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
)
from repro.core import GraphNeighborFetch
from repro.datasets import dataset_names
from repro.workloads import sample_deletions, sample_insertions

K = 8
METHODS = ["SBF", "BBF", "CBF", "LBF", "hybrid", "hyb+"]
UPDATES = 2000
TIME_BUDGET = 3.0  # seconds per (dataset, method, op) cell


def run_updates(apply_one, updates, budget=TIME_BUDGET):
    """Apply updates until the list or the time budget runs out."""
    start = time.perf_counter()
    done = 0
    for update in updates:
        apply_one(update)
        done += 1
        if time.perf_counter() - start > budget:
            break
    elapsed = time.perf_counter() - start
    return done / elapsed if elapsed > 0 else float("inf")


def insertion_throughput(method, graph, solution):
    inserts = sample_insertions(graph, min(UPDATES, 1000), seed=5)
    work = graph.copy()
    fetch = GraphNeighborFetch(work)

    def apply_one(edge):
        u, v = edge
        work.add_edge(u, v)
        if method in ("SBF", "BBF", "CBF"):
            solution.insert_edge(u, v)
        elif method == "LBF":
            solution.insert_edge(u, v)
        else:
            solution.insert_edge(u, v, fetch)

    return run_updates(apply_one, inserts)


def deletion_throughput(method, graph, solution):
    deletions = sample_deletions(graph, UPDATES, seed=6)
    work = graph.copy()
    fetch = GraphNeighborFetch(work)

    def apply_one(edge):
        u, v = edge
        work.remove_edge(u, v)
        if method in ("SBF", "BBF"):
            solution.delete_edge(u, v, work.edges())
        elif method == "CBF":
            solution.delete_edge(u, v)
        else:
            solution.delete_edge(u, v, fetch)

    return run_updates(apply_one, deletions)


def test_fig10_maintenance_throughput(once):
    table = Table(
        f"Fig. 10 — maintenance throughput (updates/s, k={K})",
        ["Dataset", "Method", "Insert/s", "Delete/s"],
    )
    measured: dict = {}

    def run():
        for name in dataset_names():
            graph = load_dataset(name)
            measured[name] = {}
            for method in METHODS:
                id_bits = paper_id_bits(name)
                ins_solution = make_solution(method, K, graph, id_bits=id_bits)
                ins = insertion_throughput(method, graph, ins_solution)
                del_solution = make_solution(method, K, graph, id_bits=id_bits)
                dele = deletion_throughput(method, graph, del_solution)
                measured[name][method] = (ins, dele)
                table.add_row(name, method, f"{ins:,.0f}", f"{dele:,.0f}")
        return measured

    once(run)
    table.add_note(f"time budget {TIME_BUDGET}s per cell; scale={bench_scale()}")
    table.add_note("paper shape: SBF/BBF deletions collapse; LBF and "
                   "hybrid/hyb+ stay usable; our inserts > deletes")
    table.emit(results_dir() / "fig10_maintenance.txt")
    chart = BarChart("Fig. 10 — deletion throughput (updates/s, log-ish "
                     "view: bars clamp at 1000)", width=40, max_value=1000,
                     unit="/s")
    for name, rows in measured.items():
        chart.add_group(name, [(m, round(rows[m][1])) for m in METHODS])
    chart.save(results_dir() / "fig10_maintenance_chart.txt")

    for name, rows in measured.items():
        sbf_del = rows["SBF"][1]
        bbf_del = rows["BBF"][1]
        for ours in ("hybrid", "hyb+"):
            ins, dele = rows[ours]
            assert dele > 10 * sbf_del, (
                f"{name}/{ours}: deletions should dwarf SBF's rebuild "
                f"({dele:.0f} vs {sbf_del:.0f})"
            )
            assert dele > 10 * bbf_del, (
                f"{name}/{ours}: deletions should dwarf BBF's scan "
                f"({dele:.0f} vs {bbf_del:.0f})"
            )
            assert ins > dele * 0.8, (
                f"{name}/{ours}: insertion should not be slower than "
                f"deletion ({ins:.0f} vs {dele:.0f})"
            )
        # LBF deletes far faster than SBF (local reconstruction).
        assert rows["LBF"][1] > 5 * sbf_del, f"{name}: LBF deletion shape"
