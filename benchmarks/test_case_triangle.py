"""Case study (Appendix E.1 style) — triangle counting acceleration.

Both external-memory frameworks (Algorithm 1 edge-iterator and
Algorithm 2 Trigon-style) run with and without the hyb+ filter over a
disk-backed store.  Shape: identical counts, fewer disk reads /
companion bytes with VEND.
"""

from repro.apps import edge_iterator_count, trigon_count
from repro.bench import (
    Table,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
)
from repro.storage import GraphStore

K = 8
DATASETS = ["as-sk", "cage"]


def test_triangle_counting_acceleration(once, tmp_path):
    table = Table(
        f"Case study — triangle counting with/without VEND (k={K})",
        ["Dataset", "Algorithm", "Triangles", "Plain reads/bytes",
         "VEND reads/bytes", "Saved"],
    )
    measured: dict = {}

    def run():
        for name in DATASETS:
            # Triangle counting touches every adjacency list repeatedly;
            # a half-size instance keeps both frameworks in seconds.
            graph = load_dataset(name, scale=0.5 * bench_scale())
            vend = make_solution("hyb+", K, graph,
                                 id_bits=paper_id_bits(name))
            store = GraphStore(tmp_path / f"{name}.log")
            store.bulk_load(graph)

            plain_ei = edge_iterator_count(store)
            vend_ei = edge_iterator_count(store, vend)
            saved_reads = 1 - vend_ei.disk_reads / max(1, plain_ei.disk_reads)
            table.add_row(
                name, "edge-iterator", plain_ei.triangles,
                plain_ei.disk_reads, vend_ei.disk_reads,
                f"{saved_reads:.1%} reads",
            )

            plain_tri = trigon_count(store, tmp_path / f"{name}-t0", 5000)
            vend_tri = trigon_count(store, tmp_path / f"{name}-t1", 5000,
                                    vend=vend)
            saved_bytes = 1 - vend_tri.companion_bytes / max(
                1, plain_tri.companion_bytes
            )
            table.add_row(
                name, "trigon", plain_tri.triangles,
                plain_tri.companion_bytes, vend_tri.companion_bytes,
                f"{saved_bytes:.1%} bytes",
            )
            measured[name] = (plain_ei, vend_ei, plain_tri, vend_tri)
            store.close()
        return measured

    once(run)
    table.add_note(f"scale={bench_scale()}")
    table.add_note("shape: identical counts; VEND shrinks disk reads and "
                   "companion files")
    table.emit(results_dir() / "case_triangle.txt")

    for name, (plain_ei, vend_ei, plain_tri, vend_tri) in measured.items():
        assert plain_ei.triangles == vend_ei.triangles == \
            plain_tri.triangles == vend_tri.triangles, f"{name}: count drift"
        assert vend_ei.disk_reads < plain_ei.disk_reads, name
        assert vend_tri.companion_bytes < plain_tri.companion_bytes, name
        assert vend_tri.filtered_triples > 0, name
