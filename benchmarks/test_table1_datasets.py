"""Table I — dataset summary and ratio of encoded vertices/edges.

For each dataset analogue and each dimension k, report |V|, |E|,
average degree, power-law character, and the fraction of vertices and
edges captured by the peeled (α) part of the hybrid encoding.  The
paper's shape: ratios grow with k; Cage shows ~0% until k reaches its
(uniform) degree scale.
"""

from repro.bench import Table, bench_scale, load_dataset, paper_id_bits, results_dir
from repro.core import HybridVend
from repro.datasets import DATASETS, dataset_names
from repro.graph import peel

K_VALUES = [2, 4, 8, 16, 32]


def encoded_ratios(graph, k, name):
    """(vertex ratio, edge ratio) captured by peeling at k*+1.

    Uses the paper dataset's I' so k* matches the real universe.
    """
    vend = HybridVend(k=k, id_bits=paper_id_bits(name))
    vend._configure_layout(max(graph.max_vertex_id, 1))
    result = peel(graph, vend.k_star + 1)
    encoded_vertices = len(result.round_of)
    encoded_edges = graph.num_edges - result.core_edge_count()
    return (
        encoded_vertices / max(1, graph.num_vertices),
        encoded_edges / max(1, graph.num_edges),
    )


def test_table1_dataset_summary(once):
    columns = ["Dataset", "|V|", "|E|", "d", "Power-law",
               *[f"Vr k={k}" for k in K_VALUES],
               *[f"Er k={k}" for k in K_VALUES]]
    table = Table("Table I — datasets and encoded vertex/edge ratios", columns)

    def run():
        for name in dataset_names():
            graph = load_dataset(name)
            spec = DATASETS[name]
            vertex_cells, edge_cells = [], []
            for k in K_VALUES:
                if k > graph.average_degree():
                    vertex_cells.append("N/A")
                    edge_cells.append("N/A")
                    continue
                vr, er = encoded_ratios(graph, k, name)
                vertex_cells.append(f"{vr:.1%}")
                edge_cells.append(f"{er:.1%}")
            table.add_row(
                name, graph.num_vertices, graph.num_edges,
                f"{graph.average_degree():.0f}",
                "yes" if spec.power_law else "no",
                *vertex_cells, *edge_cells,
            )
        return table

    once(run)
    table.add_note(f"scale={bench_scale()} of the synthetic analogues; "
                   "paper sizes in DESIGN.md")
    table.add_note("paper shape: ratios grow with k; Cage ~0% below k=16")
    table.emit(results_dir() / "table1_datasets.txt")

    # Shape assertions (the paper's qualitative claims).
    for name in dataset_names():
        graph = load_dataset(name)
        ks = [k for k in K_VALUES if k <= graph.average_degree()]
        ratios = [encoded_ratios(graph, k, name)[0] for k in ks]
        assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:])), (
            f"{name}: encoded-vertex ratio should grow with k: {ratios}"
        )
    cage = load_dataset("cage")
    low_k_ratio = encoded_ratios(cage, 2, "cage")[0]
    assert low_k_ratio < 0.05, "Cage should have ~no peelable vertices at k=2"
