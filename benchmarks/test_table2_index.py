"""Table II — index size vs raw graph size, and construction time.

For each dataset: the raw adjacency-storage footprint |G|, the VEND
index size per k (|V| * k * I / 8 bytes — identical for hybrid and
hyb+ by construction), the saved-space percentage, and the hybrid vs
hyb+ construction time at k = 8.

Paper shape: index memory is linear in k; large savings at small k,
N/A once k exceeds the average degree; hyb+ construction within a
small factor of hybrid's.
"""

from repro.bench import (
    Table,
    bench_scale,
    format_bytes,
    format_seconds,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.datasets import dataset_names
from repro.storage import GraphStore

K_VALUES = [2, 4, 8, 16, 32]
K_TIMING = 8


def raw_graph_bytes(graph) -> int:
    """Adjacency-store footprint: what bulk_load writes to disk."""
    store = GraphStore()  # in-memory backend, same byte accounting
    store.bulk_load(graph)
    return store.stats.bytes_written


def test_table2_index_construction_and_memory(once):
    table = Table(
        "Table II — index size and construction time",
        ["Dataset", "|G|", *[f"k={k}" for k in K_VALUES],
         "Hybrid build", "Hyb+ build"],
    )
    measured: dict = {}

    def run():
        for name in dataset_names():
            graph = load_dataset(name)
            raw = raw_graph_bytes(graph)
            id_bits = paper_id_bits(name)
            sizes = {}
            cells = []
            for k in K_VALUES:
                size = graph.num_vertices * k * 32 // 8
                sizes[k] = size
                if k > graph.average_degree():
                    cells.append(f"{format_bytes(size)}(N/A)")
                else:
                    saved = 1 - size / raw
                    cells.append(f"{format_bytes(size)}({saved:.0%})")
            _, hybrid_time = timed(
                lambda: make_solution("hybrid", K_TIMING, graph,
                                      id_bits=id_bits)
            )
            _, hybplus_time = timed(
                lambda: make_solution("hyb+", K_TIMING, graph,
                                      id_bits=id_bits)
            )
            hybrid_built = make_solution("hybrid", K_TIMING, graph,
                                         id_bits=id_bits)
            hybplus_built = make_solution("hyb+", K_TIMING, graph,
                                          id_bits=id_bits)
            measured[name] = {
                "raw": raw, "sizes": sizes,
                "hybrid_time": hybrid_time, "hybplus_time": hybplus_time,
                "hybrid_mem": hybrid_built.memory_bytes(),
                "hybplus_mem": hybplus_built.memory_bytes(),
            }
            table.add_row(
                name, format_bytes(raw), *cells,
                format_seconds(hybrid_time), format_seconds(hybplus_time),
            )
        return measured

    once(run)
    table.add_note(f"scale={bench_scale()}; timing at k={K_TIMING}")
    table.add_note("paper shape: memory linear in k; hybrid and hyb+ share "
                   "the same footprint; construction times comparable")
    table.emit(results_dir() / "table2_index.txt")

    for name, row in measured.items():
        sizes = row["sizes"]
        # Memory is exactly linear in k.
        for k in K_VALUES[1:]:
            assert sizes[k] == sizes[2] * k // 2, f"{name}: non-linear memory"
        # Hybrid and hyb+ report identical footprints (same |V| codes).
        assert row["hybrid_mem"] == row["hybplus_mem"], name
        # Construction times are within a small factor of each other
        # (the paper reports hyb+ ~10% slower; our hyb+ is sometimes
        # faster because compression shrinks its selection space).
        ratio = row["hybplus_time"] / row["hybrid_time"]
        assert 0.2 < ratio < 5, f"{name}: construction ratio {ratio:.2f}"
        # Small k saves substantial space versus raw adjacency.
        assert sizes[2] < row["raw"] * 0.7, f"{name}: no memory saving at k=2"
