"""Scaling study — construction cost and score vs graph size.

Table II implies near-linear construction (Gsh's 988M vertices build
in 23.6h ≈ the same vertices/second as the small graphs).  This bench
grows one analogue across scales and checks that build time grows
about linearly in |E| and that the score stays stable (VEND quality is
a local property, not a function of graph size).
"""

from repro.bench import (
    Table,
    bench_pairs,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.core import vend_score
from repro.workloads import random_pairs

K = 8
DATASET = "wiki"
SCALES = [0.125, 0.25, 0.5, 1.0]


def test_construction_scaling(once):
    table = Table(
        f"Scaling — hybrid construction vs graph size ({DATASET}, k={K})",
        ["Scale", "|V|", "|E|", "Build", "Edges/s", "Score"],
    )
    rows = []

    def run():
        for scale in SCALES:
            graph = load_dataset(DATASET, scale=scale)
            solution, build_time = timed(
                lambda g=graph: make_solution(
                    "hybrid", K, g, id_bits=paper_id_bits(DATASET)
                )
            )
            pairs = random_pairs(graph, bench_pairs() // 2, seed=95)
            report = vend_score(solution, graph, pairs)
            assert report.false_positives == 0
            rows.append((scale, graph.num_vertices, graph.num_edges,
                         build_time, report.score))
            table.add_row(
                scale, graph.num_vertices, graph.num_edges,
                f"{build_time:.2f}s",
                f"{graph.num_edges / build_time:,.0f}",
                f"{report.score:.3f}",
            )
        return rows

    once(run)
    table.add_note("shape: edges/s roughly constant (near-linear build); "
                   "score stable across sizes")
    table.emit(results_dir() / "scaling_construction.txt")

    # Near-linear: throughput at the largest scale within 4x of the
    # smallest (Python constant factors drift, asymptotics must not).
    rates = [edges / build for _, _, edges, build, _ in rows]
    assert max(rates) < 6 * min(rates), f"superlinear build cost: {rates}"
    scores = [score for *_, score in rows]
    assert max(scores) - min(scores) < 0.1, f"score unstable: {scores}"
