"""Streaming workloads against the hot-set decode cache (ISSUE 10).

The PR 6 report crowned compressed + mmap storage behind the 4-shard
thread engine as the best probe configuration.  This benchmark replays
seeded workload streams through that exact configuration twice — hot
cache off (the PR 6 best config, rebuilt on this host) and on — and
records per-scenario rows:

- ``uniform`` — no hot set; the no-regression guard (within 5%);
- ``zipfian`` — skewed left endpoints, random right endpoints: the
  NDF filter absorbs most probes, the cache sees the storage residue;
- ``zipfian_hot_set`` — the headline: Zipf(1.0)-weighted probes of
  real edges, every probe survives the filter and lands on storage
  decode.  Acceptance: the hot cache answers at >= 1.5x the cold
  path's throughput with bitwise-identical verdicts;
- ``churn`` — probe runs alternating with write storms: invalidation
  and re-warm under mutation, verdict-checked hot vs cold;
- ``mixed`` — fine-grained read/write interleaving (short batches).

Cold and hot engines are timed in *alternating* best-of rounds inside
one process, so CPU frequency drift hits both sides equally — the
ratio is stable run to run even when absolute ops/sec wander.  The
adaptive tuner runs against the warmed hot store and its decision
(measured skew, chosen budget, maintenance mode) is recorded.

Emits ``benchmarks/results/throughput_workloads.json`` and, via
``bench_report``, the ``BENCH_PR10.json`` section at the repo root.
"""

import json
import time

import numpy as np

from repro.apps.database import VendGraphDB
from repro.bench import results_dir
from repro.graph import powerlaw_graph
from repro.storage.tuning import AdaptiveTuner
from repro.workloads import make_stream
from repro.workloads.runner import run_stream

N_VERTICES = 20_000
AVG_DEGREE = 48
K = 6
METHOD = "hyb+"
SHARDS = 4
PROBE_OPS = 200_000
CHURN_OPS = 60_000
MIXED_OPS = 20_000
HOT_BYTES = 64 << 20
WARM_PASSES = 8
ROUNDS = 5
MIN_HOT_SPEEDUP = 1.5
MAX_UNIFORM_REGRESSION = 0.95


def _alternating_best(dbs, us, vs):
    """Best wall time per engine over interleaved timed rounds."""
    want = None
    for db in dbs.values():
        for _ in range(WARM_PASSES):
            got = np.asarray(db.has_edge_batch(us, vs), dtype=bool)
        if want is None:
            want = got
        assert np.array_equal(got, want)  # hot/cold verdict parity
    best = dict.fromkeys(dbs, float("inf"))
    for _ in range(ROUNDS):
        for tag, db in dbs.items():
            t0 = time.perf_counter()
            db.has_edge_batch(us, vs)
            best[tag] = min(best[tag], time.perf_counter() - t0)
    return best, want


def _cache_digest(db):
    caches = db.hot_caches()
    counts = [c.stats.snapshot() for c in caches]
    return {
        "entries": sum(len(c) for c in caches),
        "size_bytes": sum(c.size_bytes for c in caches),
        "hits": sum(s["hits"] for s in counts),
        "misses": sum(s["misses"] for s in counts),
        "invalidations": sum(s["invalidations"] for s in counts),
    }


def test_workload_sweep_hot_cache(tmp_path, bench_report):
    graph = powerlaw_graph(N_VERTICES, avg_degree=AVG_DEGREE, seed=1)
    dbs = {}
    for tag, hot in (("cold", 0), ("hot", HOT_BYTES)):
        db = VendGraphDB(tmp_path / f"{tag}.db", k=K, method=METHOD,
                         shards=SHARDS, compress=True, use_mmap=True,
                         hot_cache_bytes=hot)
        db.load_graph(graph)
        dbs[tag] = db

    rows = []

    # Probe-only scenarios, shared warmed stores, alternating rounds.
    probe_only = [
        ("uniform", "random", {}),
        ("zipfian", "zipfian", {"skew": 1.0}),
        ("zipfian_hot_set", "edges", {"skew": 1.0}),
    ]
    for scenario, kind, kwargs in probe_only:
        stream = make_stream(kind, graph, PROBE_OPS, seed=2, **kwargs)
        best, verdicts = _alternating_best(dbs, stream.us, stream.vs)
        rows.append({
            "scenario": scenario, "kind": kind, **kwargs,
            "ops": PROBE_OPS, "writes": 0,
            "positives": int(verdicts.sum()),
            "cold_ops_per_sec": round(PROBE_OPS / best["cold"]),
            "hot_ops_per_sec": round(PROBE_OPS / best["hot"]),
            "hot_speedup": round(best["cold"] / best["hot"], 3),
            "verdicts_identical": True,  # asserted in _alternating_best
            "hot_cache": _cache_digest(dbs["hot"]),
        })

    # The tuner reads the warmed (Zipf-heavy) telemetry: its skew
    # estimate and mode recommendation become part of the record.
    tuner = AdaptiveTuner.for_db(dbs["hot"], max_bytes=HOT_BYTES)
    decision = tuner.tick()
    tuner_row = {
        "skew_estimate": round(decision.skew, 3),
        "distinct_sampled": decision.distinct,
        "budget_bytes": decision.budget_bytes,
        "maintenance_mode": decision.maintenance_mode,
        "hit_rate": round(decision.hit_rate, 4),
    }
    assert decision.skew > 0.3, (
        "tuner failed to see skew in a Zipf-warmed access ring")

    # Write-bearing scenarios: the same stream of inserts/deletes is
    # applied to both stores (verdicts stay comparable), probes timed
    # by the runner.  Each write invalidates the shards' lazy probe
    # structures, so every probe segment after a write pays a rebuild;
    # mixed interleaves at ~1% write ratio and is kept short because
    # that rebuild tax — not the cache — dominates its wall time.
    write_bearing = [
        ("churn", CHURN_OPS, {}),
        ("mixed", MIXED_OPS, {"write_ratio": 0.01}),
    ]
    for scenario, ops, kwargs in write_bearing:
        stream = make_stream(scenario, graph, ops, seed=3, **kwargs)
        results = {tag: run_stream(db, stream) for tag, db in dbs.items()}
        cold, hot = results["cold"], results["hot"]
        assert np.array_equal(cold.verdicts, hot.verdicts), (
            f"{scenario}: hot verdicts diverged from cold")
        counts = stream.op_counts()
        rows.append({
            "scenario": scenario, "kind": scenario,
            "ops": len(stream), "writes": counts["insert"] + counts["delete"],
            "positives": cold.positives,
            "cold_ops_per_sec": round(cold.probe_throughput),
            "hot_ops_per_sec": round(hot.probe_throughput),
            "hot_speedup": round(hot.probe_throughput
                                 / cold.probe_throughput, 3)
            if cold.probe_throughput else 0.0,
            "verdicts_identical": True,
            "hot_cache": _cache_digest(dbs["hot"]),
        })

    for db in dbs.values():
        db.close()

    by_scenario = {row["scenario"]: row for row in rows}
    headline = by_scenario["zipfian_hot_set"]["hot_speedup"]
    payload = {
        "workload": {
            "graph": f"powerlaw(n={N_VERTICES}, avg_degree={AVG_DEGREE}, "
                     "seed=1)",
            "solution": f"{METHOD}(k={K})",
            "engine": f"thread, shards={SHARDS}, compress+mmap "
                      "(BENCH_PR6 best config)",
            "hot_cache_bytes": HOT_BYTES,
            "probe_ops": PROBE_OPS, "churn_ops": CHURN_OPS,
            "mixed_ops": MIXED_OPS,
            "rounds": ROUNDS, "warm_passes": WARM_PASSES,
        },
        "scenarios": rows,
        "tuner": tuner_row,
        "headline_hot_speedup": headline,
    }
    out = results_dir() / "throughput_workloads.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    bench_report("workloads_hot_cache", payload, report="BENCH_PR10.json")
    print("\n" + "  ".join(
        f"{row['scenario']}={row['hot_speedup']:.2f}x" for row in rows)
        + f" -> {out}")

    assert headline >= MIN_HOT_SPEEDUP, (
        f"hot cache only {headline:.2f}x on the Zipf hot-set workload "
        f"(need {MIN_HOT_SPEEDUP}x)")
    uniform = by_scenario["uniform"]["hot_speedup"]
    assert uniform >= MAX_UNIFORM_REGRESSION, (
        f"hot cache regressed the uniform sweep to {uniform:.2f}x "
        f"(floor {MAX_UNIFORM_REGRESSION}x)")
