"""Batched vs scalar end-to-end edge-query throughput.

The batched pipeline (vectorized NDF pass, then one grouped multi-get
for the survivors) must beat the scalar per-pair loop by a wide margin
on an analytical workload: 100k CommPair queries against the hybrid
filter with an in-memory adjacency store.  The ISSUE acceptance bar is
>= 5x; the vectorized member probe typically lands ~8x.

Emits ``benchmarks/results/throughput_batch.json``.
"""

import json

from repro.apps import EdgeQueryEngine
from repro.bench import results_dir
from repro.core.hybrid import HybridVend
from repro.graph import rmat_graph
from repro.storage import GraphStore
from repro.workloads import common_neighbor_pairs

K = 8
NUM_PAIRS = 100_000
MIN_SPEEDUP = 5.0


def test_throughput_batch_vs_scalar(once):
    graph = rmat_graph(scale=13, num_edges=80_000, seed=11)
    store = GraphStore()  # in-memory store: isolates pipeline overhead
    store.bulk_load(graph)
    vend = HybridVend(k=K)
    vend.build(graph)
    pairs = common_neighbor_pairs(graph, NUM_PAIRS, seed=12)
    # Materialize the columnar snapshot outside the timed region: the
    # lazy build is a one-time cost, not per-batch work.
    vend.is_nonedge_batch(pairs[:1])

    def run():
        scalar_engine = EdgeQueryEngine(store, vend)
        scalar_stats = scalar_engine.run(pairs)
        batch_engine = EdgeQueryEngine(store, vend)
        batch_stats = batch_engine.run_batch(pairs)
        return scalar_stats, batch_stats

    scalar_stats, batch_stats = once(run)

    scalar_ops = scalar_stats.total / scalar_stats.elapsed_seconds
    batch_ops = batch_stats.total / batch_stats.elapsed_seconds
    speedup = batch_ops / scalar_ops

    payload = {
        "workload": {"pairs": NUM_PAIRS, "kind": "CommPair",
                     "graph": "rmat(scale=13, edges=80k)",
                     "solution": f"hybrid(k={K})", "store": "in-memory"},
        "scalar": {"ops_per_sec": round(scalar_ops),
                   "elapsed_seconds": scalar_stats.elapsed_seconds},
        "batch": {"ops_per_sec": round(batch_ops),
                  "elapsed_seconds": batch_stats.elapsed_seconds},
        "speedup": round(speedup, 2),
        "filter_rate": batch_stats.filter_rate,
    }
    out = results_dir() / "throughput_batch.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nscalar {scalar_ops:,.0f} ops/s, batch {batch_ops:,.0f} ops/s "
          f"({speedup:.1f}x) -> {out}")

    # Same answers, same accounting: the batch pipeline is a pure
    # execution-strategy change.
    assert batch_stats.total == scalar_stats.total
    assert batch_stats.filtered == scalar_stats.filtered
    assert batch_stats.executed == scalar_stats.executed
    assert batch_stats.positives == scalar_stats.positives
    assert speedup >= MIN_SPEEDUP, (
        f"batched pipeline only {speedup:.1f}x scalar (need {MIN_SPEEDUP}x)"
    )
