"""Compressed / mmap / process-parallel storage tier vs the PR 5 path.

The ISSUE 6 acceptance bars on the seeded 100k-probe workload (same
graph, solution and one-probe-per-vertex pairing as the PR 5 sharded
benchmark, so the reports chain):

- StreamVByte v3 records shrink the powerlaw(n=100k, avg_degree=8)
  adjacency log by >= 2x on disk, with bitwise-identical verdicts;
- the best configuration answers probes at >= 1.15x the PR 5 headline
  path.  Mirroring how the PR 5 benchmark reconstructed the PR 1 read
  path, the baseline here is the PR 5 packed multi-get *re-installed*
  onto a raw 4-shard store on this host — unconditional offset
  argsort, span preads staged through ``b"".join`` + ``frombuffer``
  (the double copy this PR removes), and the multi-pass
  gather/scatter record assembly — so the comparison isolates exactly
  the read-tier work this PR adds and is hardware-independent.  The
  ops/sec recorded in BENCH_PR5.json came from different hardware and
  is reported for reference, never asserted against;
- the process executor is compared head-to-head against the thread
  executor on a CPU-bound workload (fully page-cached, NDF-heavy:
  random probes where the filter kills most storage reads, leaving
  the GIL-bound VEND code checks as the work).  The process-beats-
  thread assertion only arms when the host has more than one core —
  on a single core the spawn pool adds pure IPC overhead and the
  honest numbers say so (``cpu_count`` is recorded in the report).

Emits storage-variant, sharded and executor sweeps (throughput,
p50/p99 batch latency, on-disk bytes, compression ratio) to
``benchmarks/results/throughput_compressed.json`` and, via the
``bench_report`` fixture, to ``BENCH_PR6.json`` at the repo root.
"""

import json
import os

import numpy as np

from repro.apps import EdgeQueryEngine, ParallelEdgeQueryEngine
from repro.bench import make_solution, results_dir
from repro.graph import powerlaw_graph
from repro.storage import GraphStore, ShardedGraphStore

from test_throughput_sharded import _one_probe_per_vertex, _timed_rounds

N_VERTICES = 100_000
AVG_DEGREE = 8
K = 6
METHOD = "hyb+"
MIN_RATIO = 2.0
MIN_SPEEDUP_VS_PR5 = 1.15
#: (compress, use_mmap) storage variants.
STORAGE_VARIANTS = [(False, False), (True, False), (False, True),
                    (True, True)]
#: Sharded thread-engine variants: raw/file, zero-copy, compressed.
SHARDED_VARIANTS = [(False, False), (False, True), (True, True)]
SHARDS = 4
WORKERS = 4

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_PR5_FALLBACK_OPS = 2_298_851  # recorded BENCH_PR5 headline


def _pr5_recorded_ops() -> int:
    """Recorded 4-shard/4-worker throughput from the PR 5 report."""
    path = os.path.join(_REPO_ROOT, "BENCH_PR5.json")
    try:
        with open(path) as handle:
            sweep = json.load(handle)["sharded_parallel"]["sweep"]
        return max(row["ops_per_sec"] for row in sweep
                   if row["shards"] == SHARDS and row["workers"] == WORKERS)
    except (OSError, KeyError, ValueError):
        return _PR5_FALLBACK_OPS


def _install_pr5_read_path(store):
    """Regress every shard's packed multi-get to the PR 5 code.

    PR 5's ``get_many_packed`` fast tier resolved locations through
    the ``_vindex`` mirror, then *always* argsorted by offset, staged
    the coalesced span ``pread``s through ``b"".join`` +
    ``np.frombuffer`` (one extra whole-batch copy), and assembled
    records with the repeat-heavy gather/scatter (separate ``within``
    construction plus a scattered write even for an in-order request).
    Stats booking matches the modern path — one logical disk read per
    requested key — so engine counters stay comparable.
    """

    def regress(kv):
        def pr5_get_many_packed(keys, receipt=None):
            vi = kv._vindex
            if vi is None:
                vi = kv._vindex = kv._build_vindex()
            karr = np.asarray(keys, dtype=np.int64)
            vkeys, voffs, vszs, _varmed, _vrtypes, vrawszs = vi
            pos = np.minimum(np.searchsorted(vkeys, karr), len(vkeys) - 1)
            found = vkeys[pos] == karr
            if not found.all():
                raise KeyError(sorted(set(karr[~found].tolist())))
            offs_u, szs_u = voffs[pos], vszs[pos]
            lengths = vrawszs[pos]
            n = len(karr)
            starts = np.zeros(n, dtype=np.int64)
            np.cumsum(lengths[:-1], out=starts[1:])
            if kv._pending_flush:
                kv._file.flush()
                kv._pending_flush = False
            order = np.argsort(offs_u, kind="stable")
            offs = offs_u[order]
            szs = szs_u[order]
            ends = offs + szs
            spans = kv._spans_of(offs, ends)
            chunks = []
            span_starts = np.zeros(len(spans), dtype=np.int64)
            span_src = np.zeros(len(spans), dtype=np.int64)
            acc = 0
            for i, (lo, hi) in enumerate(spans):
                length = int(ends[hi - 1] - offs[lo])
                chunks.append(os.pread(kv._read_fd, length, int(offs[lo])))
                span_starts[i] = offs[lo]
                span_src[i] = acc
                acc += length
            src = np.frombuffer(b"".join(chunks), dtype=np.uint8)
            span_of = np.zeros(n, dtype=np.int64)
            for i, (lo, hi) in enumerate(spans):
                span_of[lo:hi] = i
            src_offs = span_src[span_of] + (offs - span_starts[span_of])
            total = int(szs.sum())
            base = np.zeros(n, dtype=np.int64)
            np.cumsum(szs[:-1], out=base[1:])
            within = np.arange(total, dtype=np.int64) - np.repeat(base, szs)
            out = np.zeros(total, dtype=np.uint8)
            slots = starts[order]
            out[np.repeat(slots, szs) + within] = src[
                np.repeat(src_offs, szs) + within]
            kv.stats.inc("disk_reads", n)
            kv.stats.inc("bytes_read", total)
            if receipt is not None:
                receipt.count_disk_reads(n, total)
            return out, lengths

        kv.get_many_packed = pr5_get_many_packed

    for seg in store.segments:
        regress(seg._kv)
    return store


def test_compressed_mmap_process_throughput(tmp_path, bench_report):
    graph = powerlaw_graph(N_VERTICES, avg_degree=AVG_DEGREE, seed=1)
    solution = make_solution(METHOD, K, graph)
    us, vs = _one_probe_per_vertex(graph)
    num_pairs = len(us)
    solution.is_nonedge_batch([(int(us[0]), int(vs[0]))])  # warm snapshot

    # PR 5 baseline: raw records, file I/O, thread engine, regressed
    # packed read tier — the BENCH_PR5 headline configuration.
    pr5_store = _install_pr5_read_path(
        ShardedGraphStore(tmp_path / "pr5.db", num_shards=SHARDS,
                          cache_bytes=0))
    if not pr5_store.num_vertices:
        pr5_store.bulk_load(graph)
    with ParallelEdgeQueryEngine(pr5_store, nonedge_filter=solution,
                                 workers=WORKERS) as engine:
        want = engine.has_edge_batch(us, vs)
        assert want.all()  # every probe is a real edge: nothing filtered
        pr5_timing = _timed_rounds(lambda: engine.has_edge_batch(us, vs))
    pr5_store.close()
    pr5_config = {
        "engine": "thread", "shards": SHARDS, "workers": WORKERS,
        "compress": False, "mmap": False, "read_path": "pr5-regressed",
        "ops_per_sec": round(num_pairs / pr5_timing["best_seconds"]),
        **pr5_timing,
    }

    # Serial storage-variant sweep: compression x mmap, one store each.
    raw_bytes = None
    variants = []
    for compress, use_mmap in STORAGE_VARIANTS:
        name = f"c{int(compress)}m{int(use_mmap)}.db"
        store = GraphStore(tmp_path / name, cache_bytes=0,
                          compress=compress, use_mmap=use_mmap)
        store.bulk_load(graph)
        engine = EdgeQueryEngine(store, nonedge_filter=solution)
        assert (engine.has_edge_batch(us, vs) == want).all()
        timing = _timed_rounds(lambda: engine.has_edge_batch(us, vs))
        on_disk = os.path.getsize(store._kv.path)
        if not compress and not use_mmap:
            raw_bytes = on_disk
        ratio = round(float(store.stats.snapshot()["compression_ratio"]), 3)
        variants.append({
            "engine": "serial", "compress": compress, "mmap": use_mmap,
            "ops_per_sec": round(num_pairs / timing["best_seconds"]),
            "bytes_on_disk": on_disk,
            "compression_ratio": ratio,
            **timing,
        })
        store.close()

    for row in variants:
        if row["compress"]:
            assert row["compression_ratio"] >= MIN_RATIO, (
                f"compressed log only {row['compression_ratio']:.2f}x "
                f"smaller (need {MIN_RATIO}x)")
            assert row["bytes_on_disk"] < raw_bytes

    # Sharded sweep: 4-shard/4-worker thread engine, current read
    # tier, over the storage variants.
    sharded_rows = []
    for compress, use_mmap in SHARDED_VARIANTS:
        name = f"sh_c{int(compress)}m{int(use_mmap)}.db"
        store = ShardedGraphStore(tmp_path / name, num_shards=SHARDS,
                                  cache_bytes=0, compress=compress,
                                  use_mmap=use_mmap)
        store.bulk_load(graph)
        with ParallelEdgeQueryEngine(store, nonedge_filter=solution,
                                     workers=WORKERS) as engine:
            assert (engine.has_edge_batch(us, vs) == want).all()
            timing = _timed_rounds(lambda: engine.has_edge_batch(us, vs))
        sharded_rows.append({
            "engine": "thread", "shards": SHARDS, "workers": WORKERS,
            "compress": compress, "mmap": use_mmap,
            "ops_per_sec": round(num_pairs / timing["best_seconds"]),
            **timing,
        })
        store.close()

    # Executor sweep: thread vs process on the CPU-bound regime — the
    # NDF filters most random probes, so per-batch time is dominated
    # by VEND code checks, not storage reads.  Left endpoints are
    # drawn from stored vertices (probing an unknown vertex raises in
    # both modes).
    rng = np.random.default_rng(7)
    verts = np.sort(np.fromiter(graph.vertices(), dtype=np.int64))
    ndf_us = rng.choice(verts, num_pairs)
    ndf_vs = rng.integers(0, N_VERTICES, num_pairs)
    store = ShardedGraphStore(tmp_path / "exec.db", num_shards=SHARDS,
                              cache_bytes=0, compress=True, use_mmap=True)
    store.bulk_load(graph)
    executors = []
    ndf_want = None
    for executor in ("thread", "process"):
        with ParallelEdgeQueryEngine(store, nonedge_filter=solution,
                                     workers=WORKERS,
                                     executor=executor) as engine:
            got = engine.has_edge_batch(ndf_us, ndf_vs)
            if ndf_want is None:
                ndf_want = got
            assert (got == ndf_want).all()
            timing = _timed_rounds(
                lambda: engine.has_edge_batch(ndf_us, ndf_vs))
        executors.append({
            "executor": executor, "shards": SHARDS, "workers": WORKERS,
            "compress": True, "mmap": True, "workload": "ndf-heavy",
            "ops_per_sec": round(num_pairs / timing["best_seconds"]),
            **timing,
        })
    store.close()

    cpu_count = os.cpu_count() or 1
    by_executor = {row["executor"]: row for row in executors}
    if cpu_count > 1:
        assert (by_executor["process"]["ops_per_sec"]
                > by_executor["thread"]["ops_per_sec"]), (
            "process executor did not beat thread executor on "
            f"{cpu_count} cores")

    best = max((*variants, *sharded_rows), key=lambda r: r["ops_per_sec"])
    speedup = best["ops_per_sec"] / pr5_config["ops_per_sec"]
    payload = {
        "workload": {"pairs": num_pairs, "kind": "one-probe-per-vertex",
                     "graph": f"powerlaw(n={N_VERTICES}, "
                              f"avg_degree={AVG_DEGREE}, seed=1)",
                     "solution": f"{METHOD}(k={K})",
                     "store": "disk, cache_bytes=0",
                     "cpu_count": cpu_count},
        "pr5_baseline": pr5_config,
        "pr5_recorded_ops_per_sec": _pr5_recorded_ops(),
        "storage_variants": variants,
        "sharded_sweep": sharded_rows,
        "executor_sweep": executors,
        "best_config": best,
        "headline_speedup_vs_pr5": round(speedup, 2),
    }
    out = results_dir() / "throughput_compressed.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    bench_report("compressed_zero_copy", payload, report="BENCH_PR6.json")
    comp = next(r for r in variants if r["compress"] and r["mmap"])
    print(f"\ncompression {comp['compression_ratio']:.2f}x "
          f"({comp['bytes_on_disk']:,} vs {raw_bytes:,} bytes), "
          f"pr5 path {pr5_config['ops_per_sec']:,.0f} ops/s, "
          f"best {best['ops_per_sec']:,.0f} ops/s "
          f"({speedup:.2f}x) -> {out}")

    assert speedup >= MIN_SPEEDUP_VS_PR5, (
        f"best configuration only {speedup:.2f}x the PR 5 read path "
        f"(need {MIN_SPEEDUP_VS_PR5}x)")
