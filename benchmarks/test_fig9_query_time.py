"""Fig. 9 — total edge-query time over disk storage (k = 8).

Two query sets per dataset (RandPair and CommPair), answered through
the disk-backed adjacency store with each method as the in-memory
filter, plus the paper's Non-VEND baseline (every query hits disk).

Paper shape: every filter beats Non-VEND by a large factor (most
queries never reach disk); hyb+ is fastest among ours and the naive
baselines trail because they filter fewer queries.
"""

import pytest

from repro.bench import (
    FIGURE_METHODS,
    Table,
    bench_pairs,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
)
from repro.apps import EdgeQueryEngine
from repro.datasets import dataset_names
from repro.storage import GraphStore
from repro.workloads import common_neighbor_pairs, random_pairs

K = 8
METHODS = ["none", *FIGURE_METHODS]


@pytest.mark.parametrize("pair_kind", ["RandPair", "CommPair"])
def test_fig9_edge_query_time(once, tmp_path, pair_kind):
    count = max(1, bench_pairs() // 4)
    table = Table(
        f"Fig. 9 — edge query totals, {pair_kind} (k={K})",
        ["Dataset", "Method", "Time", "Disk reads", "Filtered %"],
    )
    measured: dict = {}

    def run():
        for name in dataset_names():
            graph = load_dataset(name)
            if pair_kind == "RandPair":
                pairs = random_pairs(graph, count, seed=77)
            else:
                pairs = common_neighbor_pairs(graph, count, seed=77)
            store = GraphStore(tmp_path / f"{pair_kind}-{name}.log")
            store.bulk_load(graph)
            measured[name] = {}
            for method in METHODS:
                filt = None
                if method != "none":
                    filt = make_solution(method, K, graph,
                                         id_bits=paper_id_bits(name))
                io_before = store.stats.snapshot()
                engine = EdgeQueryEngine(store, filt)
                stats = engine.run(pairs)
                disk_reads = int(store.stats.diff(io_before)["disk_reads"])
                # Every answer must match ground truth (soundness).
                measured[name][method] = (
                    stats.elapsed_seconds, disk_reads,
                    stats.filter_rate, stats.positives,
                )
                table.add_row(
                    name, method, f"{stats.elapsed_seconds * 1e3:.0f}ms",
                    disk_reads, f"{stats.filter_rate:.1%}",
                )
            store.close()
        return measured

    once(run)
    table.add_note(f"{count} queries per set; scale={bench_scale()}")
    table.add_note("paper shape: all filters beat Non-VEND; hyb+/hybrid/SBF "
                   "filter the most disk reads")
    table.emit(results_dir() / f"fig9_query_time_{pair_kind}.txt")

    for name, rows in measured.items():
        none_reads = rows["none"][1]
        for method in FIGURE_METHODS:
            _, reads, _, _ = rows[method]
            assert reads < none_reads, (
                f"{name}/{method}: filtering did not reduce disk reads"
            )
        # Our solutions remove the bulk of the *avoidable* disk reads
        # (true edges must always execute against storage).
        for ours in ("hybrid", "hyb+"):
            _, reads, _, positives = rows[ours]
            avoidable = none_reads - positives
            wasted = reads - positives
            assert wasted <= avoidable * 0.45, (
                f"{name}/{ours}: {wasted} of {avoidable} no-result "
                "queries still reached disk"
            )
