"""Shared sweep logic for the Fig. 7/8 score benchmarks."""

from __future__ import annotations

import os

from repro.bench import (
    FIGURE_METHODS,
    BarChart,
    Table,
    bench_pairs,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
)
from repro.core import vend_score
from repro.datasets import dataset_names
from repro.workloads import common_neighbor_pairs, random_pairs


def k_values() -> list[int]:
    """k sweep: {2, 8} by default; REPRO_BENCH_FULL=1 gives the paper's
    full {2, 4, 8, 16, 32}."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return [2, 4, 8, 16, 32]
    return [2, 8]


def score_sweep(pair_kind: str, title: str) -> tuple[Table, dict]:
    """Evaluate every method × dataset × k on the given pair sampler.

    Returns the rendered table plus a nested result dict
    ``scores[dataset][k][method]`` for shape assertions.
    """
    sampler = {
        "random": random_pairs,
        "common": common_neighbor_pairs,
    }[pair_kind]
    count = bench_pairs()
    table = Table(title, ["Dataset", "k", *FIGURE_METHODS])
    scores: dict = {}
    for name in dataset_names():
        graph = load_dataset(name)
        pairs = sampler(graph, count, seed=101)
        id_bits = paper_id_bits(name)
        scores[name] = {}
        for k in k_values():
            if k > graph.average_degree():
                continue
            row: dict[str, float] = {}
            for method in FIGURE_METHODS:
                solution = make_solution(method, k, graph, id_bits=id_bits)
                report = vend_score(solution, graph, pairs)
                assert report.false_positives == 0, (
                    f"{method} produced false positives on {name} (k={k})"
                )
                row[method] = report.score
            scores[name][k] = row
            table.add_row(
                name, k, *[f"{row[m]:.3f}" for m in FIGURE_METHODS]
            )
    table.add_note(f"{count} sampled pairs per dataset; scale={bench_scale()}")
    return table, scores


def score_chart(title: str, scores: dict, k: int = 8) -> BarChart:
    """Grouped bar chart of one k-slice, shaped like the paper figure."""
    chart = BarChart(title, width=40, max_value=1.0)
    for dataset, per_k in scores.items():
        row = per_k.get(k) or next(iter(per_k.values()))
        chart.add_group(dataset, [(m, round(row[m], 3))
                                  for m in FIGURE_METHODS])
    return chart
