"""Ablation — ID bit-width I' (encoding compression, Section V-B).

Sweeping I' at fixed k trades stored-ID capacity against hash-slot
size: fewer bits per ID admit more explicit IDs and a larger slot
(higher score), at the cost of a smaller addressable universe.

Shape: the smallest feasible I' gives the best score; score decreases
monotonically (modulo noise) as I' grows toward I.
"""

from repro.bench import (
    Table,
    bench_pairs,
    bench_scale,
    load_dataset,
    results_dir,
)
from repro.core import HybridVend, vend_score
from repro.workloads import common_neighbor_pairs

K = 4
DATASET = "as-sk"


def test_id_bits_ablation(once):
    table = Table(
        f"Ablation — I' (ID bits) sweep ({DATASET}, k={K})",
        ["I'", "k*", "Score (CommPair)"],
    )
    scores = {}

    def run():
        graph = load_dataset(DATASET)
        pairs = common_neighbor_pairs(graph, bench_pairs(), seed=51)
        minimum = max(1, graph.max_vertex_id.bit_length())
        for id_bits in sorted({minimum, 16, 21, 26, 32}):
            if id_bits < minimum:
                continue
            vend = HybridVend(k=K, id_bits=id_bits)
            vend.build(graph)
            report = vend_score(vend, graph, pairs)
            assert report.false_positives == 0
            scores[id_bits] = (vend.k_star, report.score)
            table.add_row(id_bits, vend.k_star, f"{report.score:.4f}")
        return scores

    once(run)
    table.add_note(f"scale={bench_scale()}")
    table.add_note("smaller I' -> larger k* and hash slot -> higher score; "
                   "the paper tunes I' within [ceil(log2|V|), I]")
    table.emit(results_dir() / "ablation_idbits.txt")

    widths = sorted(scores)
    tightest = scores[widths[0]][1]
    widest = scores[widths[-1]][1]
    assert tightest >= widest - 0.01, (
        f"compressed IDs should not lose to full-width IDs: {scores}"
    )
    assert scores[widths[0]][0] >= scores[widths[-1]][0], "k* should shrink"
