"""Benchmark-suite configuration.

Benchmarks run macro experiments once (``benchmark.pedantic`` with a
single round) — they reproduce table/figure *shapes*, not nanosecond
micro-timings.  Result tables land in ``benchmarks/results/``.

The sharded-throughput benchmark additionally publishes a PR-level
report: every payload handed to the ``bench_report`` fixture is
collected for the session and written to ``BENCH_PR5.json`` at the
repo root when the run ends, so the headline numbers (throughput,
p50/p99 latency, shard/worker sweep, speedup vs the PR 1 read path)
live next to the code they measure rather than buried in test output.
"""

import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[1]
_PR_REPORT = _REPO_ROOT / "BENCH_PR5.json"
_report_sections: dict = {}


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture
def bench_report():
    """Stash a named section for the session's ``BENCH_PR5.json``."""

    def record(section: str, payload: dict) -> None:
        _report_sections[section] = payload

    return record


def pytest_sessionfinish(session, exitstatus):
    if _report_sections:
        _PR_REPORT.write_text(
            json.dumps(_report_sections, indent=2, sort_keys=True) + "\n")
