"""Benchmark-suite configuration.

Benchmarks run macro experiments once (``benchmark.pedantic`` with a
single round) — they reproduce table/figure *shapes*, not nanosecond
micro-timings.  Result tables land in ``benchmarks/results/``.

Throughput benchmarks additionally publish PR-level reports: every
payload handed to the ``bench_report`` fixture is collected for the
session and written to its target report file (``BENCH_PR5.json``,
``BENCH_PR6.json``, ...) at the repo root when the run ends, so the
headline numbers (throughput, latency percentiles, sweep tables,
compression ratios) live next to the code they measure rather than
buried in test output.
"""

import json
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parents[1]
_report_sections: dict[str, dict] = {}


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture
def bench_report():
    """Stash a named section for a session-level ``BENCH_PR*.json``."""

    def record(section: str, payload: dict, *,
               report: str = "BENCH_PR5.json") -> None:
        _report_sections.setdefault(report, {})[section] = payload

    return record


def pytest_sessionfinish(session, exitstatus):
    for report, sections in _report_sections.items():
        (_REPO_ROOT / report).write_text(
            json.dumps(sections, indent=2, sort_keys=True) + "\n")
