"""Benchmark-suite configuration.

Benchmarks run macro experiments once (``benchmark.pedantic`` with a
single round) — they reproduce table/figure *shapes*, not nanosecond
micro-timings.  Result tables land in ``benchmarks/results/``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
