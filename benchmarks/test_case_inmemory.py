"""Case study (Appendix E.2 style) — disk + VEND vs in-memory (Aspen-like).

The paper compares its disk-resident design against Aspen, a fully
in-memory graph framework.  Here the CSR snapshot plays Aspen: edge
queries answered by in-memory binary search.  The comparison shows the
trade the paper is about: the in-memory baseline is fastest but holds
the entire adjacency structure in RAM, while disk + VEND approaches it
using only ``|V|·k·I`` bits of memory by filtering almost all
no-result disk accesses.
"""

from repro.apps import EdgeQueryEngine
from repro.bench import (
    Table,
    bench_pairs,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.graph import CSRGraph
from repro.storage import GraphStore
from repro.workloads import mixed_pairs

K = 8
DATASET = "wiki"


def test_inmemory_vs_disk_vend(once, tmp_path):
    count = bench_pairs()
    table = Table(
        f"Case study — in-memory CSR vs disk+VEND ({DATASET}, k={K})",
        ["Configuration", "Memory (KiB)", "Time", "Disk reads"],
    )
    outcome = {}

    def run():
        graph = load_dataset(DATASET)
        pairs = mixed_pairs(graph, count, seed=61)
        truth = {pair: graph.has_edge(*pair) for pair in pairs}

        csr = CSRGraph(graph)
        answers, csr_time = timed(
            lambda: [csr.has_edge(u, v) for u, v in pairs]
        )
        assert all(a == truth[p] for a, p in zip(answers, pairs))
        outcome["csr"] = (csr.memory_bytes(), csr_time, 0)

        store = GraphStore(tmp_path / "disk.log")
        store.bulk_load(graph)
        for label, filt_memory, filt in (
            ("disk only", 0, None),
            ("disk + hyb+", None,
             make_solution("hyb+", K, graph, id_bits=paper_id_bits(DATASET))),
        ):
            io_before = store.stats.snapshot()
            engine = EdgeQueryEngine(store, filt)
            answers, elapsed = timed(
                lambda e=engine: [e.has_edge(u, v) for u, v in pairs]
            )
            assert all(a == truth[p] for a, p in zip(answers, pairs))
            memory = filt.memory_bytes() if filt is not None else 0
            disk_reads = int(store.stats.diff(io_before)["disk_reads"])
            outcome[label] = (memory, elapsed, disk_reads)
        store.close()
        return outcome

    once(run)
    for label, (memory, elapsed, reads) in outcome.items():
        table.add_row(label, f"{memory / 1024:.0f}",
                      f"{elapsed * 1e3:.0f}ms", reads)
    table.add_note(f"{count} mixed queries; scale={bench_scale()}")
    table.add_note("shape: CSR fastest but holds all adjacency in RAM; "
                   "VEND recovers most of the gap with k*I bits/vertex")
    table.emit(results_dir() / "case_inmemory.txt")

    csr_memory, csr_time, _ = outcome["csr"]
    disk_memory, disk_time, disk_reads = outcome["disk only"]
    vend_memory, vend_time, vend_reads = outcome["disk + hyb+"]
    assert vend_reads < disk_reads * 0.6, "VEND should filter most reads"
    assert vend_time < disk_time, "filtering should beat raw disk"
    assert vend_memory < csr_memory, (
        "the VEND index must be smaller than the full in-memory graph"
    )
