"""Fig. 8 — VEND score on vertex pairs sharing a common neighbor.

Paper shape: local (distance-2) pairs are hard; gaps between methods
widen compared to Fig. 7, hybrid/hyb+ clearly dominate the naive VEND
baselines (range / bit-hash / LBF), and hyb+ >= hybrid.  In our scaled
reproduction SBF keeps a score edge at small k on these local pairs
(at the paper's scale the same ~9-10 bits/edge budget applies; the
shape claim we hold is hybrid's dominance over the VEND baselines and
near-SBF scores at k >= 8).
"""

from sweep_utils import score_chart, score_sweep

from repro.bench import results_dir


def test_fig8_vend_score_common_neighbor_pairs(once):
    table, scores = once(
        score_sweep, "common", "Fig. 8 — VEND score, common-neighbor pairs"
    )
    table.add_note("paper shape: gaps widen vs Fig. 7; hybrid/hyb+ dominate "
                   "the VEND baselines")
    table.emit(results_dir() / "fig8_score_common.txt")
    score_chart("Fig. 8 — VEND score, common-neighbor pairs (k=8 slice)",
                scores).save(results_dir() / "fig8_score_common_chart.txt")

    for dataset, per_k in scores.items():
        for k, row in per_k.items():
            where = f"{dataset} k={k}"
            # hyb+ never loses to hybrid, and both dominate the naive
            # VEND baselines on local pairs (the paper's headline).
            assert row["hyb+"] >= row["hybrid"] - 0.01, where
            for baseline in ("range", "bit-hash", "LBF"):
                assert row["hyb+"] >= row[baseline] - 0.02, (
                    f"{where}: hyb+ below {baseline}"
                )
            if k >= 8:
                assert row["hybrid"] >= row["SBF"] - 0.2, (
                    f"{where}: hybrid too far behind SBF at k={k}"
                )

    # Gaps widen on local pairs: the method spread should be visible.
    spread = {
        (d, k): max(row.values()) - min(row.values())
        for d, per_k in scores.items() for k, row in per_k.items()
    }
    wide = sum(1 for gap in spread.values() if gap > 0.1)
    assert wide >= len(spread) // 2, (
        f"expected visible method gaps on common-neighbor pairs: {spread}"
    )
